package sim

import (
	"fmt"
	"io"
)

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceRegion: a region boundary committed (new region opened).
	TraceRegion TraceKind = iota
	// TracePersist: a store's data was admitted to a WPQ (persisted).
	TracePersist
	// TraceSync: a synchronizing group committed (atomic/alloc/emit).
	TraceSync
	// TraceCall / TraceRet: control transfer through the calling
	// convention.
	TraceCall
	TraceRet
	// TraceRegionEnd: a region finished (closed at Cycle, durable — fully
	// persisted — at Admit; Addr carries the region's start cycle so span
	// exporters can reconstruct [start, retire] even when the open event
	// predates tracer attachment).
	TraceRegionEnd

	// numTraceKinds counts the kinds above (keep it last).
	numTraceKinds
)

func (k TraceKind) String() string {
	switch k {
	case TraceRegion:
		return "region"
	case TracePersist:
		return "persist"
	case TraceSync:
		return "sync"
	case TraceCall:
		return "call"
	case TraceRet:
		return "ret"
	case TraceRegionEnd:
		return "region-end"
	}
	return "?"
}

// TraceEvent is one machine event.
type TraceEvent struct {
	Kind   TraceKind
	Core   int
	Cycle  int64
	Region int64 // region sequence number (when applicable)
	Addr   int64 // persist address / region start cycle (TraceRegionEnd)
	// Admit is the durability instant: WPQ admission time for TracePersist,
	// region retire time for TraceRegionEnd (0 otherwise).
	Admit int64
	// MC is the memory controller index of a TracePersist (0 otherwise).
	MC   int
	Info string
}

// Tracer receives machine events; SetTracer installs one. The textual
// WriteTracer is the common case (cwspsim -tracefile).
type Tracer interface {
	Event(TraceEvent)
}

// SetTracer installs a tracer (nil disables tracing).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

func (m *Machine) trace(ev TraceEvent) {
	if m.tracer != nil {
		m.tracer.Event(ev)
	}
}

// WriteTracer formats events one per line to an io.Writer.
type WriteTracer struct {
	W io.Writer
	// Filter selects which kinds are emitted. A nil or empty map means
	// "all kinds" — the two are deliberately equivalent so a caller that
	// builds the map conditionally never silences the trace by accident.
	Filter map[TraceKind]bool
	n      int64
	// Limit stops output after Limit events (0 = unlimited).
	Limit int64
}

// Event implements Tracer.
func (t *WriteTracer) Event(ev TraceEvent) {
	if len(t.Filter) > 0 && !t.Filter[ev.Kind] {
		return
	}
	if t.Limit > 0 && t.n >= t.Limit {
		return
	}
	t.n++
	fmt.Fprintf(t.W, "%10d c%d %-8s region=%d addr=%#x %s\n",
		ev.Cycle, ev.Core, ev.Kind, ev.Region, ev.Addr, ev.Info)
}

// MultiTracer fans each event out to several tracers in order (e.g. a
// textual trace and a Perfetto trace from the same run).
type MultiTracer []Tracer

// Event implements Tracer.
func (ts MultiTracer) Event(ev TraceEvent) {
	for _, t := range ts {
		t.Event(ev)
	}
}

// RingTracer keeps the last N events in memory (crash forensics).
type RingTracer struct {
	buf  []TraceEvent
	next int
	full bool
}

// NewRingTracer builds a tracer retaining n events.
func NewRingTracer(n int) *RingTracer {
	if n < 1 {
		n = 1
	}
	return &RingTracer{buf: make([]TraceEvent, n)}
}

// Event implements Tracer.
func (r *RingTracer) Event(ev TraceEvent) {
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// Events returns the retained events, oldest first.
func (r *RingTracer) Events() []TraceEvent {
	if !r.full {
		return append([]TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
