package sim

import (
	"errors"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
)

func compiledProgram(t testing.TB, seed int64) *ir.Program {
	t.Helper()
	p := progen.Generate(seed, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// storeLoopProgram builds a compiled loop with a dense store stream — big
// enough journal that every fault class has eligible victims mid-run.
func storeLoopProgram(t testing.TB) *ir.Program {
	t.Helper()
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(300))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	sh := fb.Mul(ir.R(i), ir.Imm(8))
	a := fb.Add(ir.Imm(0x2000_0000), ir.R(sh))
	v := fb.Mul(ir.R(i), ir.R(i))
	fb.Store(ir.R(v), ir.R(a), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	p := ir.NewProgram("storeloop")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// machineWhere advances one machine through candidate crash cycles until
// pick finds a victim, returning the machine, the crash cycle, and the
// pick's result.
func machineWhere[V any](t testing.TB, q *ir.Program, cfg Config, pick func(m *Machine, cycle int64) (V, bool)) (*Machine, int64, V) {
	t.Helper()
	total := recoverableRun(t, q, cfg).Stats.Cycles
	m := mustMachine(t, q, cfg)
	for frac := int64(1); frac <= 19; frac++ {
		cycle := total * frac / 20
		if cycle < 1 {
			cycle = 1
		}
		if err := m.RunUntil(cycle); err != nil {
			t.Fatal(err)
		}
		if v, ok := pick(m, cycle); ok {
			return m, cycle, v
		}
	}
	t.Fatal("no crash cycle offers an eligible fault victim")
	panic("unreachable")
}

func recoverableRun(t testing.TB, q *ir.Program, cfg Config) *Result {
	t.Helper()
	m, err := New(q, cfg, CWSP())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// midCrashCycle picks a crash cycle with work still in flight.
func midCrashCycle(t testing.TB, q *ir.Program, cfg Config) int64 {
	t.Helper()
	res := recoverableRun(t, q, cfg)
	crash := res.Stats.Cycles / 2
	if crash < 1 {
		crash = 1
	}
	return crash
}

// TestCrashRestartScanIgnoresRegionOrder: the restart point is the explicit
// minimum-Seq unretired region per core, regardless of descriptor-log
// order. A battery-buffered scheme can retire regions out of order and a
// reordered log must not move the restart point (regression: the scan once
// took the first unretired list entry).
func TestCrashRestartScanIgnoresRegionOrder(t *testing.T) {
	q := compiledProgram(t, 11)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	crash := midCrashCycle(t, q, cfg)

	base, err := mustMachine(t, q, cfg).CrashAt(crash)
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(q, cfg, CWSP())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(crash); err != nil {
		t.Fatal(err)
	}
	// Reverse the descriptor log: newest region first.
	for i, j := 0, len(m.Regions)-1; i < j; i, j = i+1, j-1 {
		m.Regions[i], m.Regions[j] = m.Regions[j], m.Regions[i]
	}
	cs, err := m.CrashAt(crash)
	if err != nil {
		t.Fatal(err)
	}

	if len(cs.Restarts) != len(base.Restarts) {
		t.Fatalf("restart count %d != baseline %d", len(cs.Restarts), len(base.Restarts))
	}
	for i := range cs.Restarts {
		got, want := cs.Restarts[i], base.Restarts[i]
		if got.Done != want.Done || got.Region.Seq != want.Region.Seq {
			t.Fatalf("core %d: restart (done=%v seq=%d) != baseline (done=%v seq=%d) after region-log reversal",
				i, got.Done, got.Region.Seq, want.Done, want.Region.Seq)
		}
	}
	if !cs.NVM.Equal(base.NVM) {
		t.Fatal("reconstructed NVM changed under region-log reversal")
	}
}

func mustMachine(t testing.TB, q *ir.Program, cfg Config) *Machine {
	t.Helper()
	m, err := New(q, cfg, CWSP())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestJournalRecordsSealed: every journal record carries a valid seal over
// all its fields, and admitted WPQ entries carry their controller's
// admission ordinal.
func TestJournalRecordsSealed(t *testing.T) {
	q := compiledProgram(t, 3)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	m := mustMachine(t, q, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Journal) == 0 {
		t.Fatal("no journal records")
	}
	admitted := 0
	for i := range m.Journal {
		rec := m.Journal[i]
		if sealRec(&rec) != rec.Seal {
			t.Fatalf("journal[%d] (addr %#x) seal mismatch", i, rec.Addr)
		}
		if rec.MCSeq > 0 {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("no WPQ-admitted records carry an MCSeq ordinal")
	}
}

// tornVictim finds a journal index whose undo value recovery will read: a
// logged record of a region unretired at the crash cycle.
func tornVictim(m *Machine, crash int64) (int, bool) {
	retired := map[int64]bool{}
	for _, ri := range m.Regions {
		if ri.Retire <= crash {
			retired[ri.Seq] = true
		}
	}
	// Require the address's first journal record, so the torn undo value is
	// what reconstruction's reverse walk leaves on media (an older record
	// rolling back the same word would mask the fault in the unsealed
	// control).
	first := map[int64]int{}
	for i := range m.Journal {
		if _, ok := first[m.Journal[i].Addr]; !ok {
			first[m.Journal[i].Addr] = i
		}
	}
	for i := range m.Journal {
		if m.Journal[i].Logged && !retired[m.Journal[i].Region] && first[m.Journal[i].Addr] == i {
			return i, true
		}
	}
	return -1, false
}

// TestTornLogDetected: a torn undo-log record fails its seal check and
// surfaces as a typed undo-log CorruptionError — and with validation
// disabled the same fault corrupts the reconstruction silently.
func TestTornLogDetected(t *testing.T) {
	q := storeLoopProgram(t)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	m, crash, victim := machineWhere(t, q, cfg, tornVictim)
	cf := &CrashFaults{TornOld: map[int]uint64{victim: 0xffffffff00000000}}

	_, err := m.CrashAtFaults(crash, cf)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("torn log not detected: err=%v", err)
	}
	if ce.Kind != "undo-log" || ce.Index != victim {
		t.Fatalf("wrong detection: %+v", ce)
	}

	// Negative control: unsealed, the torn value flows into the image.
	ucfg := cfg
	ucfg.Unsealed = true
	um := mustMachine(t, q, ucfg)
	ucs, err := um.CrashAtFaults(crash, &CrashFaults{TornOld: map[int]uint64{victim: 0xffffffff00000000}})
	if err != nil {
		t.Fatalf("unsealed crash must not error: %v", err)
	}
	clean, err := mustMachine(t, q, ucfg).CrashAt(crash)
	if err != nil {
		t.Fatal(err)
	}
	if ucs.NVM.Equal(clean.NVM) {
		t.Fatal("unsealed torn log left no trace — fault was not injected")
	}
}

// wpqVictims finds two adjacent-ordinal admitted entries of one MC.
func wpqVictims(m *Machine, crash int64) ([2]int, bool) {
	byMC := map[int]map[int64]int{}
	for i := range m.Journal {
		rec := &m.Journal[i]
		if rec.MCSeq == 0 || rec.Admit > crash {
			continue
		}
		if byMC[rec.MC] == nil {
			byMC[rec.MC] = map[int64]int{}
		}
		byMC[rec.MC][rec.MCSeq] = i
	}
	for _, seqs := range byMC {
		for seq, i := range seqs {
			if j, ok := seqs[seq+1]; ok {
				return [2]int{i, j}, true
			}
		}
	}
	return [2]int{}, false
}

// TestDroppedWPQEntryDetected: an admitted entry missing from the drain
// ledger is a wpq-ledger CorruptionError.
func TestDroppedWPQEntryDetected(t *testing.T) {
	q := storeLoopProgram(t)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	m, crash, pair := machineWhere(t, q, cfg, wpqVictims)
	_, err := m.CrashAtFaults(crash, &CrashFaults{Drop: map[int]bool{pair[0]: true}})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("dropped WPQ entry not detected: err=%v", err)
	}
	if ce.Kind != "wpq-ledger" {
		t.Fatalf("wrong detection kind: %+v", ce)
	}
}

// TestReorderedWPQPairDetected: two same-MC entries drained out of FIFO
// order invert the drain ledger.
func TestReorderedWPQPairDetected(t *testing.T) {
	q := storeLoopProgram(t)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	m, crash, pair := machineWhere(t, q, cfg, wpqVictims)
	_, err := m.CrashAtFaults(crash, &CrashFaults{Reorder: [][2]int{{pair[0], pair[1]}}})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("reordered WPQ pair not detected: err=%v", err)
	}
	if ce.Kind != "wpq-ledger" {
		t.Fatalf("wrong detection kind: %+v", ce)
	}
}

// TestCkptCorruptionDetectedAtResume: a flipped checkpoint word passes
// journal validation (it strikes media, not the log) but fails NewResumed's
// seal scrub before any instruction executes.
func TestCkptCorruptionDetectedAtResume(t *testing.T) {
	q := compiledProgram(t, 11)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	crash := midCrashCycle(t, q, cfg)

	m := mustMachine(t, q, cfg)
	if err := m.RunUntil(crash); err != nil {
		t.Fatal(err)
	}
	addrs := m.SealedCkptAddrs()
	if len(addrs) == 0 {
		t.Skip("no checkpoint-area writes by this crash cycle")
	}
	addr := addrs[len(addrs)/2]
	cs, err := m.CrashAtFaults(crash, &CrashFaults{CkptXOR: map[int64]uint64{addr: 0xdead_beef}})
	if err != nil {
		t.Fatalf("ckpt corruption must survive reconstruction (detection is at resume): %v", err)
	}
	_, err = NewResumed(q, cfg, CWSP(), []ThreadSpec{{Fn: q.Entry}}, cs)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt checkpoint slot not detected at resume: err=%v", err)
	}
	if ce.Kind != "ckpt-slot" || ce.Addr != addr {
		t.Fatalf("wrong detection: %+v", ce)
	}
}

// TestCrashAtFaultsEmptyMatchesCrashAt: a nil/empty fault set is exactly
// the fault-free protocol.
func TestCrashAtFaultsEmptyMatchesCrashAt(t *testing.T) {
	q := compiledProgram(t, 7)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	crash := midCrashCycle(t, q, cfg)

	a, err := mustMachine(t, q, cfg).CrashAt(crash)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mustMachine(t, q, cfg).CrashAtFaults(crash, &CrashFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.NVM.Equal(b.NVM) {
		t.Fatal("empty fault set changed the reconstruction")
	}
	if len(a.Seals) != len(b.Seals) {
		t.Fatalf("seal tables differ: %d vs %d", len(a.Seals), len(b.Seals))
	}
}
