package compiler

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cwsp/internal/ir"
	"cwsp/internal/progen"
)

func TestCompileRejectsInvalidProgram(t *testing.T) {
	p := ir.NewProgram("bad")
	p.Entry = "missing"
	if _, _, err := Compile(p, DefaultOptions()); err == nil {
		t.Fatal("expected error for missing entry")
	}
}

func TestCompileLeavesInputUntouched(t *testing.T) {
	p := progen.Generate(5, progen.DefaultConfig())
	before := p.Dump()
	if _, _, err := Compile(p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if p.Dump() != before {
		t.Fatal("Compile mutated its input program")
	}
}

func TestCompilePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{DefaultOptions(), {PruneCheckpoints: false}} {
			q, _, err := Compile(p, opt)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			got, err := ir.Interp(q, nil, 0)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got.RetVal != want.RetVal || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
				t.Errorf("seed %d opts %+v: semantics changed", seed, opt)
			}
		}
	}
}

func TestReportTotals(t *testing.T) {
	p := progen.Generate(9, progen.DefaultConfig())
	_, rep, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRegions() < 1 {
		t.Error("no regions reported")
	}
	if rep.TotalCheckpoints() < 0 || rep.PrunedCheckpoints() < 0 {
		t.Error("negative checkpoint totals")
	}
	_, repU, err := Compile(p, Options{PruneCheckpoints: false})
	if err != nil {
		t.Fatal(err)
	}
	if repU.TotalCheckpoints() < rep.TotalCheckpoints() {
		t.Errorf("unpruned build has fewer checkpoints (%d) than pruned (%d)",
			repU.TotalCheckpoints(), rep.TotalCheckpoints())
	}
}

// TestLiveAcrossCoversPostCallReads validates the calling convention's spill
// set dynamically: after any call returns, the caller may only read
// registers that were spilled (LiveAcross), the call's destination, or
// registers redefined since the return.
func TestLiveAcrossCoversPostCallReads(t *testing.T) {
	cfg := progen.DefaultConfig()
	cfg.MaxFuncs = 3
	for seed := int64(0); seed < 100; seed++ {
		p := progen.Generate(seed, cfg)
		q, _, err := Compile(p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}

		type frameState struct {
			fn    *ir.Function
			valid map[ir.Reg]bool // false entries are "lost across a call"
		}
		var stack []*frameState
		cur := &frameState{fn: q.EntryFunc(), valid: map[ir.Reg]bool{}}
		fail := 0

		hook := func(f *ir.Function, ref ir.InstrRef, in *ir.Instr, regs []int64) {
			if fail > 3 {
				return
			}
			if f != cur.fn {
				// The interpreter switched frames (call or return); handled
				// via the OpCall/OpRet cases below, so a mismatch here means
				// our model lost sync.
				fail++
				t.Errorf("seed %d: frame model out of sync (%s vs %s)", seed, f.Name, cur.fn.Name)
				return
			}
			// Check reads.
			for _, u := range in.Uses(nil) {
				if invalid, tracked := cur.valid[u]; tracked && invalid {
					fail++
					t.Errorf("seed %d: %s b%d[%d] %s reads r%d which was not spilled across a call",
						seed, f.Name, ref.Block, ref.Index, in.Op, u)
				}
			}
			switch in.Op {
			case ir.OpCall:
				// Invalidate everything not in the spill set; dst stays
				// valid (return value).
				spilled := map[ir.Reg]bool{}
				for _, r := range f.LiveAcross[ref] {
					spilled[r] = true
				}
				for r := 0; r < f.NumRegs; r++ {
					if !spilled[ir.Reg(r)] && ir.Reg(r) != in.Dst {
						cur.valid[ir.Reg(r)] = true // mark lost after return
					}
				}
				cur.valid[in.Dst] = false // return value is delivered

				// Push callee frame.
				callee := q.Funcs[in.Callee]
				stack = append(stack, cur)
				cur = &frameState{fn: callee, valid: map[ir.Reg]bool{}}
			case ir.OpRet:
				if len(stack) > 0 {
					cur = stack[len(stack)-1]
					stack = stack[:len(stack)-1]
				}
			default:
				if d := in.Def(); d != ir.NoReg {
					cur.valid[d] = false // redefinition revalidates
				}
			}
		}
		if _, err := ir.InterpTraced(q, nil, 5_000_000, ir.NewFlatMem(), hook); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCompiledProgramsRoundTripText: the text interchange format preserves
// compiled programs (boundaries, checkpoints, slices, spill sets) exactly.
func TestCompiledProgramsRoundTripText(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _, err := Compile(p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := q.MarshalText(&buf); err != nil {
			t.Fatal(err)
		}
		text := buf.String()
		r, err := ir.UnmarshalText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var buf2 bytes.Buffer
		if err := r.MarshalText(&buf2); err != nil {
			t.Fatal(err)
		}
		if text != buf2.String() {
			t.Fatalf("seed %d: unstable round trip", seed)
		}
		a, err := ir.Interp(q, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ir.Interp(r, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.RetVal != b.RetVal {
			t.Fatalf("seed %d: semantics changed through text", seed)
		}
	}
}

// TestCheckGatePasses: with Options.Check set, compilation of healthy
// programs runs the soundness verifier and attaches a clean report.
func TestCheckGatePasses(t *testing.T) {
	opt := DefaultOptions()
	opt.Check = true
	for seed := int64(1); seed <= 10; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		_, rep, err := Compile(p, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Check == nil {
			t.Fatalf("seed %d: Check report not attached", seed)
		}
		if rep.Check.HasErrors() {
			t.Fatalf("seed %d: gate report has errors:\n%s", seed, rep.Check.String())
		}
	}
}

// TestCheckGateOffByDefault: without the option, no verifier report is
// produced.
func TestCheckGateOffByDefault(t *testing.T) {
	p := progen.Generate(1, progen.DefaultConfig())
	_, rep, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Check != nil {
		t.Fatal("Check report attached without Options.Check")
	}
}
