// Package compiler is the cWSP compiler driver: it runs idempotent region
// formation, live-out checkpoint insertion + pruning, recovery-slice
// generation, and the live-across-call analysis over every function of a
// program, producing a binary-equivalent program the cycle-level machine can
// execute with whole-system persistence.
//
// The paper builds these passes on Clang/LLVM 13 and applies them to the
// whole Linux stack; here the same algorithms run over the repo's virtual
// IR (see DESIGN.md for the substitution argument).
package compiler

import (
	"fmt"
	"sort"

	"cwsp/internal/analysis"
	"cwsp/internal/check"
	"cwsp/internal/ckpt"
	"cwsp/internal/ir"
	"cwsp/internal/regions"
)

// Options select which passes run, mirroring the paper's Figure 15
// optimization breakdown knobs plus this repo's ablation knobs.
type Options struct {
	// PruneCheckpoints enables Penny-style checkpoint pruning (the paper's
	// "+Pruning"). When false, every live register is checkpointed at every
	// boundary.
	PruneCheckpoints bool
	// HoistCheckpoints moves loop-invariant checkpoints to loop entries
	// (enabled by default; ablation: abl-ckpt).
	HoistCheckpoints bool
	// ChainDepth bounds recovery-slice ALU reconstruction chains
	// (0 disables expression reconstruction; <0 means the default).
	ChainDepth int
	// Check runs the independent soundness verifier (internal/check) over
	// the compiled program and fails the compilation on any error-severity
	// diagnostic. The report is attached to Report.Check either way.
	Check bool
}

// DefaultOptions enables everything.
func DefaultOptions() Options {
	return Options{PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: -1}
}

// FuncReport summarizes compilation of one function.
type FuncReport struct {
	Name    string
	Regions regions.Stats
	Ckpt    ckpt.Stats
}

// Report summarizes a whole-program compilation.
type Report struct {
	Funcs []FuncReport
	// Check holds the soundness verifier's report when Options.Check is set.
	Check *check.Report
}

// TotalRegions sums static regions over all functions.
func (r *Report) TotalRegions() int {
	n := 0
	for _, f := range r.Funcs {
		n += f.Regions.Total
	}
	return n
}

// TotalCheckpoints sums surviving checkpoints over all functions.
func (r *Report) TotalCheckpoints() int {
	n := 0
	for _, f := range r.Funcs {
		n += f.Ckpt.Final
	}
	return n
}

// PrunedCheckpoints sums removed checkpoints over all functions.
func (r *Report) PrunedCheckpoints() int {
	n := 0
	for _, f := range r.Funcs {
		n += f.Ckpt.Pruned
	}
	return n
}

// Compile clones p and runs the cWSP passes over every function. The input
// program is left untouched (benchmarks compare compiled and baseline
// executions of the same source).
func Compile(p *ir.Program, opt Options) (*ir.Program, *Report, error) {
	if err := ir.VerifyProgram(p); err != nil {
		return nil, nil, fmt.Errorf("compiler: input: %w", err)
	}
	q := p.Clone()
	rep := &Report{}

	names := make([]string, 0, len(q.Funcs))
	for n := range q.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		f := q.Funcs[name]
		fr := FuncReport{Name: name}
		fr.Regions = regions.Form(f)

		co := ckpt.Options{Prune: opt.PruneCheckpoints, Hoist: opt.HoistCheckpoints, ChainDepth: opt.ChainDepth}
		if opt.ChainDepth < 0 {
			co.ChainDepth = ckpt.DefaultOptions().ChainDepth
		}
		var err error
		fr.Ckpt, err = ckpt.InsertOpts(f, co)
		if err != nil {
			return nil, nil, fmt.Errorf("compiler: %s: %w", name, err)
		}

		liveAcross(f)
		rep.Funcs = append(rep.Funcs, fr)
	}

	if err := ir.VerifyProgram(q); err != nil {
		return nil, nil, fmt.Errorf("compiler: output: %w", err)
	}
	if opt.Check {
		rep.Check = check.CheckProgramOpts(q, check.Options{RequireCompiled: true})
		if rep.Check.HasErrors() {
			return nil, rep, fmt.Errorf("compiler: soundness check failed (%d errors):\n%s",
				rep.Check.Errors(), rep.Check.String())
		}
	}
	return q, rep, nil
}

// liveAcross records, for every call-like site, the caller registers that
// are live after the site minus its destination — the set the calling
// convention spills to the NVM stack and restores on return.
func liveAcross(f *ir.Function) {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	f.LiveAcross = map[ir.InstrRef][]ir.Reg{}
	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			continue
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			live := lv.LiveAfter(bi, ii)
			if in.Dst != ir.NoReg {
				live.Remove(in.Dst)
			}
			regs := live.Members()
			sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
			f.LiveAcross[ir.InstrRef{Block: bi, Index: ii}] = regs
		}
	}
}
