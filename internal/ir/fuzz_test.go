package ir

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedPrograms builds a few representative programs — straightline,
// branchy, and one carrying full compiler metadata — whose marshalled text
// seeds the fuzz corpus alongside hand-written fragments.
func fuzzSeedPrograms() []*Program {
	var out []*Program

	{
		fb := NewFunc("main", 0)
		fb.NewBlock("entry")
		a := fb.Const(7)
		b := fb.Add(R(a), Imm(2))
		fb.Ret(R(b))
		p := NewProgram("straight")
		p.Entry = "main"
		p.Add(fb.MustDone())
		out = append(out, p)
	}

	{
		fb := NewFunc("main", 1)
		entry := fb.NewBlock("entry")
		then := fb.AddBlock("then")
		els := fb.AddBlock("else")
		fb.SetBlock(entry)
		fb.Br(R(0), then, els)
		fb.SetBlock(then)
		fb.Ret(Imm(1))
		fb.SetBlock(els)
		addr := fb.Alloc(16)
		fb.Store(Imm(3), R(addr), 8)
		v := fb.Load(R(addr), 8)
		fb.Ret(R(v))
		p := NewProgram("branchy")
		p.Entry = "main"
		p.Add(fb.MustDone())
		out = append(out, p)
	}

	{
		fb := NewFunc("main", 0)
		fb.NewBlock("entry")
		a := fb.Const(5)
		fb.Ret(R(a))
		f := fb.MustDone()
		blk := f.Blocks[0]
		blk.Instrs = append([]Instr{{Op: OpBoundary, RegionID: 0}},
			blk.Instrs[0],
			Instr{Op: OpCkpt, A: R(a)},
			Instr{Op: OpBoundary, RegionID: 1},
			blk.Instrs[1])
		f.NumRegions = 2
		f.Slices = map[int]RecoverySlice{
			0: {RegionID: 0, Entry: InstrRef{Block: 0, Index: 0}},
			1: {RegionID: 1, Entry: InstrRef{Block: 0, Index: 3},
				LiveIn: []Reg{a},
				Steps:  []SliceStep{{Op: SliceLoadCkpt, Dst: a, Src: a}}},
		}
		f.LiveAcross = map[InstrRef][]Reg{{Block: 0, Index: 2}: {a}}
		p := NewProgram("meta")
		p.Entry = "main"
		p.Add(f)
		out = append(out, p)
	}

	return out
}

// FuzzUnmarshalText asserts the parser never panics, and that anything it
// accepts re-marshals to a stable fixed point: marshal(parse(x)) must equal
// marshal(parse(marshal(parse(x)))).
func FuzzUnmarshalText(f *testing.F) {
	for _, p := range fuzzSeedPrograms() {
		var buf bytes.Buffer
		if err := p.MarshalText(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("program t entry=main\nfunc main params=0 regs=1 regions=0\nblock entry\n  const r0 #1\n  ret r0\nend\n")
	f.Add("program t entry=\n")
	f.Add("end\n")
	f.Add("")
	f.Add("program \x00 entry=main\nfunc main params=-1 regs=99999999 regions=0\n")
	// Regression: a bare "block" line used to crash the parser.
	f.Add("program 0 entry=\nfunc 0 =0 =0 =0\nblock")
	f.Add("program t entry=m\nfunc m params=0 regs=0 regions=0\nblock b\n  step 1 2 3\nliveacross 0,0 = r0\nend\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := UnmarshalText(strings.NewReader(src))
		if err != nil {
			return
		}
		var m1 bytes.Buffer
		if err := p.MarshalText(&m1); err != nil {
			t.Fatalf("accepted input fails to marshal: %v", err)
		}
		q, err := UnmarshalText(bytes.NewReader(m1.Bytes()))
		if err != nil {
			t.Fatalf("marshalled form fails to parse: %v\ninput:\n%s", err, m1.String())
		}
		var m2 bytes.Buffer
		if err := q.MarshalText(&m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
			t.Fatalf("marshal is not a fixed point:\nfirst:\n%s\nsecond:\n%s", m1.String(), m2.String())
		}
	})
}
