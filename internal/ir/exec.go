package ir

import "fmt"

// Env is the execution environment an executor needs: a word-addressed
// memory, a heap allocator, and an output sink. The cycle-level simulator
// and the functional interpreter both implement it.
type Env interface {
	Load(addr int64) int64
	Store(addr int64, val int64)
	Alloc(size int64) int64
	Emit(v int64)
}

// CtrlKind classifies the control effect of one executed instruction.
type CtrlKind uint8

const (
	CtrlNext CtrlKind = iota // fall through to the next instruction
	CtrlJump                 // transfer to block Effect.Target
	CtrlCall                 // call Effect.Callee with Effect.Args
	CtrlRet                  // return (Effect.RetVal if Effect.HasRet)
)

// Effect describes what happened when an instruction executed.
type Effect struct {
	Kind   CtrlKind
	Target int
	Callee string
	Args   []int64
	RetVal int64
	HasRet bool
}

func opnd(o Operand, regs []int64) int64 {
	switch o.Kind {
	case OperandImm:
		return o.Imm
	case OperandReg:
		return regs[o.Reg]
	}
	panic("ir: evaluated absent operand")
}

// Exec executes one instruction functionally against regs and env and
// returns its control effect. OpBoundary and OpCkpt are architectural
// no-ops here; the simulator layers their persistence side effects on top.
// Division or remainder by zero yields zero; shift counts are masked to
// 0..63. Memory addresses are truncated to 8-byte alignment.
func Exec(in *Instr, regs []int64, env Env) Effect {
	switch in.Op {
	case OpConst:
		regs[in.Dst] = in.A.Imm
	case OpMov:
		regs[in.Dst] = opnd(in.A, regs)
	case OpAdd:
		regs[in.Dst] = opnd(in.A, regs) + opnd(in.B, regs)
	case OpSub:
		regs[in.Dst] = opnd(in.A, regs) - opnd(in.B, regs)
	case OpMul:
		regs[in.Dst] = opnd(in.A, regs) * opnd(in.B, regs)
	case OpDiv:
		b := opnd(in.B, regs)
		if b == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = opnd(in.A, regs) / b
		}
	case OpRem:
		b := opnd(in.B, regs)
		if b == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = opnd(in.A, regs) % b
		}
	case OpAnd:
		regs[in.Dst] = opnd(in.A, regs) & opnd(in.B, regs)
	case OpOr:
		regs[in.Dst] = opnd(in.A, regs) | opnd(in.B, regs)
	case OpXor:
		regs[in.Dst] = opnd(in.A, regs) ^ opnd(in.B, regs)
	case OpShl:
		regs[in.Dst] = opnd(in.A, regs) << (uint64(opnd(in.B, regs)) & 63)
	case OpShr:
		regs[in.Dst] = int64(uint64(opnd(in.A, regs)) >> (uint64(opnd(in.B, regs)) & 63))
	case OpCmpEQ:
		regs[in.Dst] = b2i(opnd(in.A, regs) == opnd(in.B, regs))
	case OpCmpNE:
		regs[in.Dst] = b2i(opnd(in.A, regs) != opnd(in.B, regs))
	case OpCmpLT:
		regs[in.Dst] = b2i(opnd(in.A, regs) < opnd(in.B, regs))
	case OpCmpLE:
		regs[in.Dst] = b2i(opnd(in.A, regs) <= opnd(in.B, regs))
	case OpCmpGT:
		regs[in.Dst] = b2i(opnd(in.A, regs) > opnd(in.B, regs))
	case OpCmpGE:
		regs[in.Dst] = b2i(opnd(in.A, regs) >= opnd(in.B, regs))
	case OpSelect:
		if opnd(in.A, regs) != 0 {
			regs[in.Dst] = opnd(in.B, regs)
		} else {
			regs[in.Dst] = opnd(in.C, regs)
		}
	case OpLoad:
		regs[in.Dst] = env.Load(EffAddr(in, regs))
	case OpStore:
		env.Store(EffAddr(in, regs), opnd(in.A, regs))
	case OpAlloc:
		regs[in.Dst] = env.Alloc(opnd(in.A, regs))
	case OpJmp:
		return Effect{Kind: CtrlJump, Target: in.Then}
	case OpBr:
		if opnd(in.A, regs) != 0 {
			return Effect{Kind: CtrlJump, Target: in.Then}
		}
		return Effect{Kind: CtrlJump, Target: in.Else}
	case OpRet:
		if in.HasVal {
			return Effect{Kind: CtrlRet, RetVal: opnd(in.A, regs), HasRet: true}
		}
		return Effect{Kind: CtrlRet}
	case OpCall:
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = opnd(a, regs)
		}
		return Effect{Kind: CtrlCall, Callee: in.Callee, Args: args}
	case OpAtomicCAS:
		addr := EffAddr(in, regs)
		old := env.Load(addr)
		if old == opnd(in.B, regs) {
			env.Store(addr, opnd(in.C, regs))
		}
		regs[in.Dst] = old
	case OpAtomicAdd:
		addr := EffAddr(in, regs)
		old := env.Load(addr)
		env.Store(addr, old+opnd(in.B, regs))
		regs[in.Dst] = old
	case OpAtomicXchg:
		addr := EffAddr(in, regs)
		old := env.Load(addr)
		env.Store(addr, opnd(in.B, regs))
		regs[in.Dst] = old
	case OpFence, OpBoundary, OpCkpt:
		// Architecturally empty; persistence semantics live in the simulator.
	case OpEmit:
		env.Emit(opnd(in.A, regs))
	default:
		panic(fmt.Sprintf("ir: Exec: unhandled op %v", in.Op))
	}
	return Effect{Kind: CtrlNext}
}

// EffAddr computes the word-aligned effective address of a memory
// instruction.
func EffAddr(in *Instr, regs []int64) int64 {
	base := opnd(in.A, regs)
	if in.Op == OpStore {
		base = opnd(in.B, regs)
	}
	return (base + in.Off) &^ 7
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
