package ir

import "fmt"

// FuncBuilder constructs a Function block by block.
type FuncBuilder struct {
	F   *Function
	cur *Block
}

// NewFunc starts building a function with the given parameter count.
// Registers 0..nparams-1 receive the arguments.
func NewFunc(name string, nparams int) *FuncBuilder {
	f := &Function{Name: name, NParams: nparams, NumRegs: nparams}
	return &FuncBuilder{F: f}
}

// NewBlock appends a new basic block and makes it current.
func (fb *FuncBuilder) NewBlock(name string) *Block {
	b := fb.AddBlock(name)
	fb.cur = b
	return b
}

// AddBlock appends a new basic block without switching the current block,
// for building forward-referenced control flow.
func (fb *FuncBuilder) AddBlock(name string) *Block {
	b := &Block{Name: name, Index: len(fb.F.Blocks)}
	fb.F.Blocks = append(fb.F.Blocks, b)
	return b
}

// SetBlock switches the current block.
func (fb *FuncBuilder) SetBlock(b *Block) { fb.cur = b }

// Cur returns the current block.
func (fb *FuncBuilder) Cur() *Block { return fb.cur }

// Reg allocates a fresh virtual register.
func (fb *FuncBuilder) Reg() Reg { return fb.F.NewReg() }

// Param returns the i-th parameter register.
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.F.NParams {
		panic(fmt.Sprintf("ir: param %d out of range for %s", i, fb.F.Name))
	}
	return Reg(i)
}

func (fb *FuncBuilder) emit(in Instr) {
	if fb.cur == nil {
		panic("ir: emit with no current block (call NewBlock first)")
	}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
}

// Const emits Dst = imm and returns a fresh destination register.
func (fb *FuncBuilder) Const(v int64) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpConst, Dst: d, A: Imm(v)})
	return d
}

// ConstInto emits dst = imm into an existing register.
func (fb *FuncBuilder) ConstInto(dst Reg, v int64) {
	fb.emit(Instr{Op: OpConst, Dst: dst, A: Imm(v)})
}

// Mov emits dst = src.
func (fb *FuncBuilder) Mov(dst Reg, src Operand) {
	fb.emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// Bin emits Dst = a <op> b into a fresh register.
func (fb *FuncBuilder) Bin(op Op, a, b Operand) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: op, Dst: d, A: a, B: b})
	return d
}

// BinInto emits dst = a <op> b.
func (fb *FuncBuilder) BinInto(op Op, dst Reg, a, b Operand) {
	fb.emit(Instr{Op: op, Dst: dst, A: a, B: b})
}

// Add is shorthand for Bin(OpAdd, ...).
func (fb *FuncBuilder) Add(a, b Operand) Reg { return fb.Bin(OpAdd, a, b) }

// Sub is shorthand for Bin(OpSub, ...).
func (fb *FuncBuilder) Sub(a, b Operand) Reg { return fb.Bin(OpSub, a, b) }

// Mul is shorthand for Bin(OpMul, ...).
func (fb *FuncBuilder) Mul(a, b Operand) Reg { return fb.Bin(OpMul, a, b) }

// Select emits Dst = cond != 0 ? a : b.
func (fb *FuncBuilder) Select(cond, a, b Operand) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpSelect, Dst: d, A: cond, B: a, C: b})
	return d
}

// Load emits Dst = mem[addr+off] into a fresh register.
func (fb *FuncBuilder) Load(addr Operand, off int64) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpLoad, Dst: d, A: addr, Off: off, AliasSet: -1})
	return d
}

// LoadInto emits dst = mem[addr+off].
func (fb *FuncBuilder) LoadInto(dst Reg, addr Operand, off int64) {
	fb.emit(Instr{Op: OpLoad, Dst: dst, A: addr, Off: off, AliasSet: -1})
}

// Store emits mem[addr+off] = val.
func (fb *FuncBuilder) Store(val, addr Operand, off int64) {
	fb.emit(Instr{Op: OpStore, A: val, B: addr, Off: off, AliasSet: -1})
}

// Alloc emits Dst = allocate(size bytes).
func (fb *FuncBuilder) Alloc(size int64) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpAlloc, Dst: d, A: Imm(size)})
	return d
}

// Jmp terminates the current block with an unconditional jump.
func (fb *FuncBuilder) Jmp(target *Block) {
	fb.emit(Instr{Op: OpJmp, Then: target.Index})
}

// Br terminates the current block with a conditional branch.
func (fb *FuncBuilder) Br(cond Operand, then, els *Block) {
	fb.emit(Instr{Op: OpBr, A: cond, Then: then.Index, Else: els.Index})
}

// Ret terminates the current block returning val.
func (fb *FuncBuilder) Ret(val Operand) {
	fb.emit(Instr{Op: OpRet, A: val, HasVal: true})
}

// RetVoid terminates the current block with no return value.
func (fb *FuncBuilder) RetVoid() {
	fb.emit(Instr{Op: OpRet})
}

// Call emits Dst = callee(args...) into a fresh register.
func (fb *FuncBuilder) Call(callee string, args ...Operand) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpCall, Dst: d, Callee: callee, Args: args})
	return d
}

// AtomicCAS emits Dst = old; if old==expect then mem[addr+off]=repl.
func (fb *FuncBuilder) AtomicCAS(addr Operand, off int64, expect, repl Operand) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpAtomicCAS, Dst: d, A: addr, B: expect, C: repl, Off: off, AliasSet: -1})
	return d
}

// AtomicAdd emits Dst = fetch-and-add(mem[addr+off], v).
func (fb *FuncBuilder) AtomicAdd(addr Operand, off int64, v Operand) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpAtomicAdd, Dst: d, A: addr, B: v, Off: off, AliasSet: -1})
	return d
}

// AtomicXchg emits Dst = exchange(mem[addr+off], v).
func (fb *FuncBuilder) AtomicXchg(addr Operand, off int64, v Operand) Reg {
	d := fb.Reg()
	fb.emit(Instr{Op: OpAtomicXchg, Dst: d, A: addr, B: v, Off: off, AliasSet: -1})
	return d
}

// Fence emits a memory fence.
func (fb *FuncBuilder) Fence() { fb.emit(Instr{Op: OpFence}) }

// Emit appends v to the observable output stream.
func (fb *FuncBuilder) Emit(v Operand) { fb.emit(Instr{Op: OpEmit, A: v}) }

// Done verifies and returns the finished function.
func (fb *FuncBuilder) Done() (*Function, error) {
	if err := VerifyFunc(fb.F); err != nil {
		return nil, err
	}
	return fb.F, nil
}

// MustDone is Done but panics on verification failure; intended for
// statically-known-good workload construction.
func (fb *FuncBuilder) MustDone() *Function {
	f, err := fb.Done()
	if err != nil {
		panic(err)
	}
	return f
}
