package ir

import (
	"fmt"
	"sort"
	"strings"
)

var opNames = map[Op]string{
	OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge", OpSelect: "select",
	OpLoad: "load", OpStore: "store", OpAlloc: "alloc",
	OpJmp: "jmp", OpBr: "br", OpRet: "ret", OpCall: "call",
	OpAtomicCAS: "cas", OpAtomicAdd: "xadd", OpAtomicXchg: "xchg",
	OpFence: "fence", OpEmit: "emit",
	OpBoundary: "boundary", OpCkpt: "ckpt",
}

// String returns the opcode mnemonic.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", op)
}

// String renders one instruction in assembly-like form.
func (in *Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "r%d = const %d", in.Dst, in.A.Imm)
	case OpMov:
		fmt.Fprintf(&b, "r%d = mov %s", in.Dst, in.A)
	case OpSelect:
		fmt.Fprintf(&b, "r%d = select %s, %s, %s", in.Dst, in.A, in.B, in.C)
	case OpLoad:
		fmt.Fprintf(&b, "r%d = load [%s+%d]", in.Dst, in.A, in.Off)
	case OpStore:
		fmt.Fprintf(&b, "store %s, [%s+%d]", in.A, in.B, in.Off)
	case OpAlloc:
		fmt.Fprintf(&b, "r%d = alloc %s", in.Dst, in.A)
	case OpJmp:
		fmt.Fprintf(&b, "jmp b%d", in.Then)
	case OpBr:
		fmt.Fprintf(&b, "br %s, b%d, b%d", in.A, in.Then, in.Else)
	case OpRet:
		if in.HasVal {
			fmt.Fprintf(&b, "ret %s", in.A)
		} else {
			b.WriteString("ret")
		}
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		fmt.Fprintf(&b, "r%d = call %s(%s)", in.Dst, in.Callee, strings.Join(args, ", "))
	case OpAtomicCAS:
		fmt.Fprintf(&b, "r%d = cas [%s+%d], %s -> %s", in.Dst, in.A, in.Off, in.B, in.C)
	case OpAtomicAdd:
		fmt.Fprintf(&b, "r%d = xadd [%s+%d], %s", in.Dst, in.A, in.Off, in.B)
	case OpAtomicXchg:
		fmt.Fprintf(&b, "r%d = xchg [%s+%d], %s", in.Dst, in.A, in.Off, in.B)
	case OpFence:
		b.WriteString("fence")
	case OpEmit:
		fmt.Fprintf(&b, "emit %s", in.A)
	case OpBoundary:
		fmt.Fprintf(&b, "--- boundary region=%d ---", in.RegionID)
	case OpCkpt:
		fmt.Fprintf(&b, "ckpt r%d", in.A.Reg)
	default:
		fmt.Fprintf(&b, "r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
	return b.String()
}

// Dump renders the whole function, including region and recovery-slice
// metadata when present.
func (f *Function) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%d params, %d regs", f.Name, f.NParams, f.NumRegs)
	if f.NumRegions > 0 {
		fmt.Fprintf(&b, ", %d regions", f.NumRegions)
	}
	b.WriteString(")\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: ; %s\n", blk.Index, blk.Name)
		for i := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", blk.Instrs[i].String())
		}
	}
	if len(f.Slices) > 0 {
		ids := make([]int, 0, len(f.Slices))
		for id := range f.Slices {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			rs := f.Slices[id]
			fmt.Fprintf(&b, "slice region=%d entry=b%d[%d] live-in=%v\n", id, rs.Entry.Block, rs.Entry.Index, rs.LiveIn)
			for _, st := range rs.Steps {
				fmt.Fprintf(&b, "  %s\n", st.String())
			}
		}
	}
	return b.String()
}

// String renders one recovery-slice step.
func (s SliceStep) String() string {
	switch s.Op {
	case SliceConst:
		return fmt.Sprintf("r%d = const %d", s.Dst, s.Imm)
	case SliceLoadCkpt:
		return fmt.Sprintf("r%d = ckptload slot(r%d)", s.Dst, s.Src)
	case SliceUnary:
		return fmt.Sprintf("r%d = %s r%d, %d", s.Dst, s.ALUOp, s.Src, s.Imm)
	case SliceBinary:
		return fmt.Sprintf("r%d = %s r%d, r%d", s.Dst, s.ALUOp, s.Src, s.Src2)
	}
	return "?"
}

// Dump renders all functions of a program, entry first then sorted by name.
func (p *Program) Dump() string {
	var b strings.Builder
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		if n != p.Entry {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	names = append([]string{p.Entry}, names...)
	for _, n := range names {
		b.WriteString(p.Funcs[n].Dump())
		b.WriteString("\n")
	}
	return b.String()
}
