package ir

import "fmt"

// VerifyFunc checks the structural invariants of a function:
//   - at least one block; every block non-empty and ending in exactly one
//     terminator, with no terminator mid-block;
//   - all branch targets in range;
//   - all register references within [0, NumRegs);
//   - every register read on some path is defined before use on every path
//     from entry (conservative dataflow check).
func VerifyFunc(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %s has no blocks", f.Name)
	}
	for bi, b := range f.Blocks {
		if b.Index != bi {
			return fmt.Errorf("ir: %s block %q index mismatch (%d != %d)", f.Name, b.Name, b.Index, bi)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s block %q is empty", f.Name, b.Name)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == OpInvalid || in.Op >= opMax {
				return fmt.Errorf("ir: %s.%s[%d] invalid opcode %d", f.Name, b.Name, ii, in.Op)
			}
			if in.IsTerminator() != (ii == len(b.Instrs)-1) {
				return fmt.Errorf("ir: %s.%s[%d] terminator placement violation (%v)", f.Name, b.Name, ii, in.Op)
			}
			if err := checkRegs(f, b, ii, in); err != nil {
				return err
			}
			switch in.Op {
			case OpJmp:
				if in.Then < 0 || in.Then >= len(f.Blocks) {
					return fmt.Errorf("ir: %s.%s jmp target %d out of range", f.Name, b.Name, in.Then)
				}
			case OpBr:
				if in.Then < 0 || in.Then >= len(f.Blocks) || in.Else < 0 || in.Else >= len(f.Blocks) {
					return fmt.Errorf("ir: %s.%s br targets (%d,%d) out of range", f.Name, b.Name, in.Then, in.Else)
				}
			}
		}
		if b.Term() == nil {
			return fmt.Errorf("ir: %s block %q does not end in a terminator", f.Name, b.Name)
		}
	}
	return verifyDefBeforeUse(f)
}

func checkRegs(f *Function, b *Block, ii int, in *Instr) error {
	check := func(r Reg) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("ir: %s.%s[%d] register r%d out of range (NumRegs=%d)", f.Name, b.Name, ii, r, f.NumRegs)
		}
		return nil
	}
	for _, u := range in.Uses(nil) {
		if err := check(u); err != nil {
			return err
		}
	}
	return check(in.Def())
}

// verifyDefBeforeUse runs a forward "definitely assigned" dataflow and
// rejects reads of registers that may be undefined. Parameters are defined
// at entry.
func verifyDefBeforeUse(f *Function) error {
	n := len(f.Blocks)
	// in[b] = set of registers definitely assigned at block entry.
	in := make([][]bool, n)
	full := func() []bool {
		s := make([]bool, f.NumRegs)
		for i := range s {
			s[i] = true
		}
		return s
	}
	for i := range in {
		in[i] = full() // top = all defined; meet = intersection
	}
	entry := make([]bool, f.NumRegs)
	for i := 0; i < f.NParams; i++ {
		entry[i] = true
	}
	in[0] = entry

	changed := true
	for changed {
		changed = false
		for bi, b := range f.Blocks {
			cur := append([]bool(nil), in[bi]...)
			for ii := range b.Instrs {
				if d := b.Instrs[ii].Def(); d != NoReg {
					cur[d] = true
				}
			}
			for _, s := range b.Succs() {
				if s == 0 {
					continue // entry keeps its param-only set
				}
				for r := 0; r < f.NumRegs; r++ {
					if in[s][r] && !cur[r] {
						in[s][r] = false
						changed = true
					}
				}
			}
		}
	}

	for bi, b := range f.Blocks {
		cur := append([]bool(nil), in[bi]...)
		for ii := range b.Instrs {
			inst := &b.Instrs[ii]
			for _, u := range inst.Uses(nil) {
				if !cur[u] {
					return fmt.Errorf("ir: %s.%s[%d] reads r%d which may be undefined", f.Name, b.Name, ii, u)
				}
			}
			if d := inst.Def(); d != NoReg {
				cur[d] = true
			}
		}
	}
	return nil
}

// VerifyProgram verifies every function and the cross-function properties:
// the entry exists and all call targets resolve with matching arity.
func VerifyProgram(p *Program) error {
	if p.Entry == "" || p.Funcs[p.Entry] == nil {
		return fmt.Errorf("ir: program %s has no entry function %q", p.Name, p.Entry)
	}
	for _, f := range p.Funcs {
		if err := VerifyFunc(f); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != OpCall {
					continue
				}
				callee := p.Funcs[in.Callee]
				if callee == nil {
					return fmt.Errorf("ir: %s calls unknown function %q", f.Name, in.Callee)
				}
				if len(in.Args) != callee.NParams {
					return fmt.Errorf("ir: %s calls %s with %d args, want %d", f.Name, in.Callee, len(in.Args), callee.NParams)
				}
			}
		}
	}
	return nil
}
