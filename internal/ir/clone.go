package ir

// Clone deep-copies a function (instructions, blocks, metadata) so compiler
// transforms can run without mutating the caller's copy.
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:       f.Name,
		NParams:    f.NParams,
		NumRegs:    f.NumRegs,
		NumRegions: f.NumRegions,
	}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{Name: b.Name, Index: b.Index, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for j := range nb.Instrs {
			if nb.Instrs[j].Args != nil {
				args := make([]Operand, len(nb.Instrs[j].Args))
				copy(args, nb.Instrs[j].Args)
				nb.Instrs[j].Args = args
			}
		}
		nf.Blocks[i] = nb
	}
	if f.Slices != nil {
		nf.Slices = make(map[int]RecoverySlice, len(f.Slices))
		for k, v := range f.Slices {
			cv := v
			cv.LiveIn = append([]Reg(nil), v.LiveIn...)
			cv.Steps = append([]SliceStep(nil), v.Steps...)
			nf.Slices[k] = cv
		}
	}
	if f.LiveAcross != nil {
		nf.LiveAcross = make(map[InstrRef][]Reg, len(f.LiveAcross))
		for k, v := range f.LiveAcross {
			nf.LiveAcross[k] = append([]Reg(nil), v...)
		}
	}
	return nf
}

// Clone deep-copies a program.
func (p *Program) Clone() *Program {
	np := NewProgram(p.Name)
	np.Entry = p.Entry
	for n, f := range p.Funcs {
		np.Funcs[n] = f.Clone()
	}
	return np
}
