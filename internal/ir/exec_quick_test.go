package ir

import (
	"testing"
	"testing/quick"
)

// TestExecMatchesGoSemantics property-checks every ALU opcode against its
// Go reference semantics (with the IR's documented deviations: shift counts
// masked to 0..63, division by zero yields zero).
func TestExecMatchesGoSemantics(t *testing.T) {
	type ref struct {
		op Op
		f  func(a, b int64) int64
	}
	b2 := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	refs := []ref{
		{OpAdd, func(a, b int64) int64 { return a + b }},
		{OpSub, func(a, b int64) int64 { return a - b }},
		{OpMul, func(a, b int64) int64 { return a * b }},
		{OpDiv, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{OpRem, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
		{OpAnd, func(a, b int64) int64 { return a & b }},
		{OpOr, func(a, b int64) int64 { return a | b }},
		{OpXor, func(a, b int64) int64 { return a ^ b }},
		{OpShl, func(a, b int64) int64 { return a << (uint64(b) & 63) }},
		{OpShr, func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }},
		{OpCmpEQ, func(a, b int64) int64 { return b2(a == b) }},
		{OpCmpNE, func(a, b int64) int64 { return b2(a != b) }},
		{OpCmpLT, func(a, b int64) int64 { return b2(a < b) }},
		{OpCmpLE, func(a, b int64) int64 { return b2(a <= b) }},
		{OpCmpGT, func(a, b int64) int64 { return b2(a > b) }},
		{OpCmpGE, func(a, b int64) int64 { return b2(a >= b) }},
	}
	for _, r := range refs {
		r := r
		f := func(a, b int64) bool {
			in := Instr{Op: r.op, Dst: 2, A: R(0), B: R(1)}
			regs := []int64{a, b, 0}
			Exec(&in, regs, nil)
			return regs[2] == r.f(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", r.op, err)
		}
	}
}

// TestSelectQuick checks OpSelect against its reference.
func TestSelectQuick(t *testing.T) {
	f := func(c, a, b int64) bool {
		in := Instr{Op: OpSelect, Dst: 3, A: R(0), B: R(1), C: R(2)}
		regs := []int64{c, a, b, 0}
		Exec(&in, regs, nil)
		want := b
		if c != 0 {
			want = a
		}
		return regs[3] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInterpStoreLoadRoundTrip: storing then loading an arbitrary aligned
// address returns the stored value, through the full interpreter.
func TestInterpStoreLoadRoundTrip(t *testing.T) {
	f := func(rawAddr, val int64) bool {
		addr := (rawAddr & 0x7FFF_FFF8)
		if addr < 0 {
			addr = -addr
		}
		fb := NewFunc("main", 0)
		fb.NewBlock("entry")
		fb.Store(Imm(val), Imm(addr), 0)
		v := fb.Load(Imm(addr), 0)
		fb.Ret(R(v))
		p := NewProgram("rt")
		p.Add(fb.MustDone())
		p.Entry = "main"
		res, err := Interp(p, nil, 0)
		return err == nil && res.RetVal == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
