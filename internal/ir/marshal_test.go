package ir

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	var buf bytes.Buffer
	if err := p.MarshalText(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalText(&buf)
	if err != nil {
		t.Fatalf("unmarshal: %v\n--- text ---\n%s", err, buf.String())
	}
	return q
}

func TestMarshalRoundTripSimple(t *testing.T) {
	p := sumProgram(t, 20)
	q := roundTrip(t, p)
	// Structural equality via a second marshal.
	var b1, b2 bytes.Buffer
	if err := p.MarshalText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := q.MarshalText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("marshal not stable across a round trip")
	}
	// Semantic equality.
	r1, err := Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Interp(q, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RetVal != r2.RetVal || fmt.Sprint(r1.Output) != fmt.Sprint(r2.Output) {
		t.Error("round trip changed semantics")
	}
}

func TestMarshalRoundTripWithCalls(t *testing.T) {
	cb := NewFunc("store42", 1)
	cb.NewBlock("entry")
	cb.Store(Imm(42), R(cb.Param(0)), 0)
	cb.RetVoid()
	fb := NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Alloc(64)
	fb.Call("store42", R(a))
	v := fb.Load(R(a), 0)
	fb.Ret(R(v))
	p := NewProgram("calls")
	p.Add(cb.MustDone())
	p.Add(fb.MustDone())
	p.Entry = "main"

	q := roundTrip(t, p)
	res, err := Interp(q, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 42 {
		t.Errorf("ret = %d, want 42", res.RetVal)
	}
}

func TestMarshalCarriesMetadata(t *testing.T) {
	p := sumProgram(t, 5)
	f := p.Funcs["main"]
	f.NumRegions = 3
	f.Slices = map[int]RecoverySlice{
		1: {
			RegionID: 1,
			Entry:    InstrRef{Block: 1, Index: 0},
			LiveIn:   []Reg{0, 2},
			Steps: []SliceStep{
				{Op: SliceConst, Dst: 0, Imm: 7},
				{Op: SliceLoadCkpt, Dst: 2, Src: 2},
				{Op: SliceUnary, Dst: 2, Src: 2, Imm: 3, ALUOp: OpShl},
			},
		},
	}
	f.LiveAcross = map[InstrRef][]Reg{
		{Block: 0, Index: 2}: {0, 1},
		{Block: 1, Index: 1}: nil,
	}
	q := roundTrip(t, p)
	g := q.Funcs["main"]
	if g.NumRegions != 3 {
		t.Errorf("regions = %d", g.NumRegions)
	}
	rs, ok := g.Slices[1]
	if !ok || len(rs.Steps) != 3 || rs.Steps[2].ALUOp != OpShl || rs.Entry.Block != 1 {
		t.Errorf("slice lost: %+v", rs)
	}
	if len(rs.LiveIn) != 2 || rs.LiveIn[1] != 2 {
		t.Errorf("live-in lost: %v", rs.LiveIn)
	}
	la := g.LiveAcross[InstrRef{Block: 0, Index: 2}]
	if len(la) != 2 || la[0] != 0 || la[1] != 1 {
		t.Errorf("liveacross lost: %v", la)
	}
	if got := g.LiveAcross[InstrRef{Block: 1, Index: 1}]; got != nil {
		t.Errorf("empty liveacross should round-trip to nil, got %v", got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"program x entry=main\n", // no end
		"block b\n",              // block before program
		"program x entry=main\nfunc f params=0 regs=0 regions=0\nblock b\n  999 0 _ _ _ 0 0 0 0 0\nend\n", // bad opcode
		"program x entry=main\nend\n", // missing entry function
		"program x entry=main\nfunc main params=0 regs=1 regions=0\nblock b\n  bogus\nend\n",
	}
	for _, src := range cases {
		if _, err := UnmarshalText(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestUnmarshalVerifies(t *testing.T) {
	// Structurally parseable but semantically invalid (use of undefined reg).
	src := `program x entry=main
func main params=0 regs=2 regions=0
block entry
  ` + encodeInstr(&Instr{Op: OpAdd, Dst: 0, A: R(1), B: Imm(1)}) + `
  ` + encodeInstr(&Instr{Op: OpRet, A: R(0), HasVal: true}) + `
end
`
	if _, err := UnmarshalText(strings.NewReader(src)); err == nil {
		t.Error("verifier should reject use of undefined register")
	}
}

// TestMarshalRoundTripCompiledPrograms is in the compiler tests (to avoid
// an import cycle); here we round-trip the raw generator output at scale.
func TestMarshalRoundTripGenerated(t *testing.T) {
	// Local import cycle prevents using progen here; hand-roll a variety of
	// shapes via the builder covering every opcode.
	fb := NewFunc("main", 0)
	fb.NewBlock("entry")
	p0 := fb.Alloc(128)
	fb.Store(Imm(5), R(p0), 0)
	v := fb.Load(R(p0), 0)
	w := fb.Bin(OpShl, R(v), Imm(2))
	x := fb.AtomicAdd(R(p0), 8, R(w))
	y := fb.AtomicCAS(R(p0), 8, R(x), Imm(9))
	z := fb.AtomicXchg(R(p0), 16, R(y))
	fb.Fence()
	s := fb.Select(R(z), R(w), Imm(3))
	fb.Emit(R(s))
	loop := fb.AddBlock("loop")
	exit := fb.AddBlock("exit")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(loop)
	fb.SetBlock(loop)
	c := fb.Bin(OpCmpLT, R(i), Imm(4))
	fb.BinInto(OpAdd, i, R(i), Imm(1))
	fb.Br(R(c), loop, exit)
	fb.SetBlock(exit)
	fb.Ret(R(s))
	p := NewProgram("all-ops")
	p.Add(fb.MustDone())
	p.Entry = "main"

	q := roundTrip(t, p)
	r1, err := Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Interp(q, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RetVal != r2.RetVal || fmt.Sprint(r1.Mem.Snapshot()) != fmt.Sprint(r2.Mem.Snapshot()) {
		t.Error("all-ops round trip changed behaviour")
	}
}
