package ir

import (
	"fmt"
	"sort"
)

// FlatMem is a sparse word-granularity memory for functional execution.
type FlatMem struct {
	Words map[int64]int64
	brk   int64 // heap bump pointer
}

// HeapBase is where functional and simulated heaps begin.
const HeapBase int64 = 0x1000_0000

// NewFlatMem returns an empty functional memory.
func NewFlatMem() *FlatMem {
	return &FlatMem{Words: map[int64]int64{}, brk: HeapBase}
}

// Load reads the aligned word at addr (zero if never written).
func (m *FlatMem) Load(addr int64) int64 { return m.Words[addr&^7] }

// Store writes the aligned word at addr.
func (m *FlatMem) Store(addr, val int64) { m.Words[addr&^7] = val }

// Alloc carves size bytes (rounded up to 64) off the heap.
func (m *FlatMem) Alloc(size int64) int64 {
	if size <= 0 {
		size = 8
	}
	size = (size + 63) &^ 63
	p := m.brk
	m.brk += size
	return p
}

// Brk returns the current heap break.
func (m *FlatMem) Brk() int64 { return m.brk }

// Snapshot returns a copy of memory contents sorted by address, for
// state-equality assertions in tests.
func (m *FlatMem) Snapshot() []WordAt {
	out := make([]WordAt, 0, len(m.Words))
	for a, v := range m.Words {
		if v != 0 {
			out = append(out, WordAt{Addr: a, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// WordAt is one (address, value) pair of a memory snapshot.
type WordAt struct {
	Addr int64
	Val  int64
}

// InterpResult carries the outcome of a functional run.
type InterpResult struct {
	Output  []int64
	RetVal  int64
	Steps   int64
	Mem     *FlatMem
	Dynamic DynCounts
}

// DynCounts tallies dynamic instruction classes.
type DynCounts struct {
	Total      int64
	Loads      int64
	Stores     int64
	Branches   int64
	Calls      int64
	Atomics    int64
	Boundaries int64
	Ckpts      int64
}

type interpEnv struct {
	mem *FlatMem
	out []int64
}

func (e *interpEnv) Load(a int64) int64  { return e.mem.Load(a) }
func (e *interpEnv) Store(a, v int64)    { e.mem.Store(a, v) }
func (e *interpEnv) Alloc(s int64) int64 { return e.mem.Alloc(s) }
func (e *interpEnv) Emit(v int64)        { e.out = append(e.out, v) }

type frame struct {
	fn   *Function
	regs []int64
	blk  int
	pc   int
	dst  Reg // caller register receiving our return value
}

// Interp functionally executes a program's entry function with the given
// arguments against a fresh memory, up to maxSteps dynamic instructions
// (0 means a generous default). It returns the observable output, the
// entry's return value, and final memory. Compiler transformations must
// preserve all three — the compiler test suite asserts exactly that.
func Interp(p *Program, args []int64, maxSteps int64) (*InterpResult, error) {
	return InterpOn(p, args, maxSteps, NewFlatMem())
}

// TraceFn observes each dynamic instruction just before it executes: the
// containing function, its static position, the instruction, and the current
// register file (read-only view).
type TraceFn func(f *Function, ref InstrRef, in *Instr, regs []int64)

// InterpOn is Interp against a caller-provided memory image.
func InterpOn(p *Program, args []int64, maxSteps int64, mem *FlatMem) (*InterpResult, error) {
	return InterpTraced(p, args, maxSteps, mem, nil)
}

// InterpTraced is InterpOn with a per-instruction trace hook (may be nil).
func InterpTraced(p *Program, args []int64, maxSteps int64, mem *FlatMem, hook TraceFn) (*InterpResult, error) {
	if err := VerifyProgram(p); err != nil {
		return nil, err
	}
	if maxSteps <= 0 {
		maxSteps = 200_000_000
	}
	env := &interpEnv{mem: mem}
	entry := p.EntryFunc()
	if len(args) != entry.NParams {
		return nil, fmt.Errorf("ir: entry %s wants %d args, got %d", entry.Name, entry.NParams, len(args))
	}
	res := &InterpResult{Mem: env.mem}

	cur := newFrame(entry, args)
	stack := []*frame{}
	for {
		if res.Dynamic.Total >= maxSteps {
			return nil, fmt.Errorf("ir: interp exceeded %d steps in %s", maxSteps, p.Name)
		}
		b := cur.fn.Blocks[cur.blk]
		in := &b.Instrs[cur.pc]
		if hook != nil {
			hook(cur.fn, InstrRef{Block: cur.blk, Index: cur.pc}, in, cur.regs)
		}
		res.Dynamic.Total++
		switch {
		case in.Op == OpLoad:
			res.Dynamic.Loads++
		case in.Op == OpStore:
			res.Dynamic.Stores++
		case in.Op == OpBr || in.Op == OpJmp:
			res.Dynamic.Branches++
		case in.Op == OpCall || in.Op == OpAlloc:
			res.Dynamic.Calls++
		case in.Op == OpAtomicCAS || in.Op == OpAtomicAdd || in.Op == OpAtomicXchg || in.Op == OpFence:
			res.Dynamic.Atomics++
		case in.Op == OpBoundary:
			res.Dynamic.Boundaries++
		case in.Op == OpCkpt:
			res.Dynamic.Ckpts++
		}

		eff := Exec(in, cur.regs, env)
		switch eff.Kind {
		case CtrlNext:
			cur.pc++
		case CtrlJump:
			cur.blk, cur.pc = eff.Target, 0
		case CtrlCall:
			callee := p.Funcs[eff.Callee]
			nf := newFrame(callee, eff.Args)
			nf.dst = in.Dst
			cur.pc++ // resume after the call on return
			stack = append(stack, cur)
			cur = nf
		case CtrlRet:
			if len(stack) == 0 {
				if eff.HasRet {
					res.RetVal = eff.RetVal
				}
				res.Output = env.out
				res.Steps = res.Dynamic.Total
				return res, nil
			}
			parent := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if eff.HasRet && cur.dst != NoReg {
				parent.regs[cur.dst] = eff.RetVal
			}
			cur = parent
		}
	}
}

func newFrame(fn *Function, args []int64) *frame {
	regs := make([]int64, fn.NumRegs)
	copy(regs, args)
	return &frame{fn: fn, regs: regs, dst: NoReg}
}
