// Package ir defines the virtual-register intermediate representation that
// the cWSP compiler operates on and the simulator executes.
//
// The IR is deliberately machine-flavoured rather than SSA: registers are
// mutable virtual registers (the paper's compiler passes run after LLVM's
// register-pressure-aware lowering, where liveness and antidependence are
// questions about mutable state). Each function has its own register space;
// the calling convention (spill live-across-call registers to the simulated
// NVM stack) is applied by the executor so that whole-system recovery can
// rebuild call frames from persisted memory.
//
// All values are 64-bit words. Memory is byte-addressed; loads and stores
// transfer one aligned 8-byte word, matching cWSP's 8-byte persist
// granularity.
package ir

import "fmt"

// Reg identifies a virtual register within one function. Registers
// 0..NParams-1 hold the incoming arguments.
type Reg int

// NoReg marks an unused register field.
const NoReg Reg = -1

// Op enumerates IR opcodes.
type Op uint8

// Opcodes. Arithmetic ops take two operands (register or immediate) and
// write Dst. Memory ops address mem[Addr+Off] where Addr is an operand.
const (
	OpInvalid Op = iota

	// Data movement.
	OpConst // Dst = A.Imm
	OpMov   // Dst = A

	// Integer arithmetic and logic: Dst = A <op> B.
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; divide by zero yields 0 (workloads avoid it)
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right

	// Comparisons produce 0 or 1: Dst = A <cmp> B (signed).
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Select: Dst = A != 0 ? B : C. Keeps hot loops branch-free.
	OpSelect

	// Memory. OpLoad: Dst = mem[A+Off]. OpStore: mem[B+Off] = A.
	OpLoad
	OpStore

	// OpAlloc: Dst = base of a fresh Imm(A)-byte heap block (the runtime
	// allocator; a call-like region boundary per the paper's treatment of
	// malloc/sbrk).
	OpAlloc

	// Control flow (terminators).
	OpJmp // goto Then
	OpBr  // if A != 0 goto Then else Else
	OpRet // return A (if HasVal)

	// OpCall: Dst = Callee(Args...). A call site is a region boundary.
	OpCall

	// Atomics (synchronization points; region boundaries, and the core
	// drains its persistence state before committing them).
	// OpAtomicCAS: Dst = old value; if old == B then mem[A+Off] = C.
	// OpAtomicAdd: Dst = old; mem[A+Off] = old + B.
	// OpAtomicXchg: Dst = old; mem[A+Off] = B.
	OpAtomicCAS
	OpAtomicAdd
	OpAtomicXchg
	OpFence

	// OpEmit appends A to the program's observable output stream (used by
	// tests to detect wrong-execution). Treated as an irrevocable call-like
	// boundary.
	OpEmit

	// Compiler-inserted (never written by front ends).
	OpBoundary // region boundary; RegionID/RS filled by the compiler
	OpCkpt     // checkpoint register A.Reg to the NVM checkpoint area

	opMax
)

// OperandKind distinguishes absent, register, and immediate operands. The
// zero value is "absent", so unused operand fields of an Instr are inert.
type OperandKind uint8

const (
	OperandNone OperandKind = iota
	OperandReg
	OperandImm
)

// Operand is a register or an immediate (or absent).
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
}

// IsImm reports whether the operand is an immediate.
func (o Operand) IsImm() bool { return o.Kind == OperandImm }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OperandImm, Imm: v} }

func (o Operand) String() string {
	switch o.Kind {
	case OperandImm:
		return fmt.Sprintf("%d", o.Imm)
	case OperandReg:
		return fmt.Sprintf("r%d", o.Reg)
	}
	return "_"
}

// Instr is one IR instruction. Field use depends on Op; see the opcode
// comments above.
type Instr struct {
	Op      Op
	Dst     Reg
	A, B, C Operand
	Off     int64 // byte offset for memory ops
	HasVal  bool  // OpRet: returns A

	Callee string    // OpCall
	Args   []Operand // OpCall

	Then, Else int // successor block indices for OpJmp/OpBr

	// Compiler-assigned metadata.
	RegionID int // OpBoundary: static region id within the function
	AliasSet int // memory ops: may-alias class from alias analysis (-1 unknown)
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpJmp, OpBr, OpRet:
		return true
	}
	return false
}

// IsBoundaryOp reports whether the instruction is an inherent region
// boundary in cWSP's region formation (call sites, synchronization points,
// allocation, emit).
func (in *Instr) IsBoundaryOp() bool {
	switch in.Op {
	case OpCall, OpAlloc, OpAtomicCAS, OpAtomicAdd, OpAtomicXchg, OpFence, OpEmit, OpBoundary:
		return true
	}
	return false
}

// ReadsMem reports whether the instruction reads program memory.
func (in *Instr) ReadsMem() bool {
	switch in.Op {
	case OpLoad, OpAtomicCAS, OpAtomicAdd, OpAtomicXchg:
		return true
	}
	return false
}

// WritesMem reports whether the instruction may write program memory.
func (in *Instr) WritesMem() bool {
	switch in.Op {
	case OpStore, OpAtomicCAS, OpAtomicAdd, OpAtomicXchg:
		return true
	}
	return false
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	add := func(o Operand) {
		if o.Kind == OperandReg && o.Reg != NoReg {
			dst = append(dst, o.Reg)
		}
	}
	switch in.Op {
	case OpConst:
	case OpRet:
		if in.HasVal {
			add(in.A)
		}
	case OpCall:
		for _, a := range in.Args {
			add(a)
		}
	case OpJmp:
	default:
		add(in.A)
		add(in.B)
		add(in.C)
	}
	return dst
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case OpStore, OpJmp, OpBr, OpRet, OpFence, OpEmit, OpBoundary, OpCkpt:
		return NoReg
	}
	return in.Dst
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	Name   string
	Index  int
	Instrs []Instr
}

// Term returns the block terminator.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor block indices.
func (b *Block) Succs() []int {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpJmp:
		return []int{t.Then}
	case OpBr:
		if t.Then == t.Else {
			return []int{t.Then}
		}
		return []int{t.Then, t.Else}
	}
	return nil
}

// Function is a single IR function. Blocks[0] is the entry block.
type Function struct {
	Name    string
	NParams int
	NumRegs int
	Blocks  []*Block

	// Compiler-populated metadata.
	NumRegions int                   // static regions after formation
	Slices     map[int]RecoverySlice // region id -> recovery slice
	LiveAcross map[InstrRef][]Reg    // call site -> caller regs spilled across it
}

// InstrRef names one static instruction position within a function.
type InstrRef struct {
	Block int
	Index int
}

func (r InstrRef) Less(o InstrRef) bool {
	if r.Block != o.Block {
		return r.Block < o.Block
	}
	return r.Index < o.Index
}

// RecoverySlice is the compiler-generated code that reconstructs a region's
// live-in registers at recovery time (Section IV-C of the paper). Steps run
// in order against a fresh register file.
type RecoverySlice struct {
	RegionID int
	Entry    InstrRef // first instruction of the region
	LiveIn   []Reg
	Steps    []SliceStep
}

// SliceOp enumerates recovery-slice step kinds.
type SliceOp uint8

const (
	SliceConst    SliceOp = iota // Dst = Imm
	SliceLoadCkpt                // Dst = checkpoint slot of register Src
	SliceUnary                   // Dst = <ALUOp> applied to (Dst? no: Src, Imm) — see SliceStep
	SliceBinary                  // Dst = Src <ALUOp> Src2 (register-register)
)

// SliceStep is one recovery-slice instruction.
type SliceStep struct {
	Op    SliceOp
	Dst   Reg
	Src   Reg // register operand (for LoadCkpt: the architectural slot id)
	Src2  Reg
	Imm   int64
	ALUOp Op // OpAdd etc. for SliceUnary (Src op Imm) / SliceBinary (Src op Src2)
}

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// Block returns the block with the given index.
func (f *Function) Block(i int) *Block { return f.Blocks[i] }

// Program is a set of functions with a designated entry point.
type Program struct {
	Name  string
	Funcs map[string]*Function
	Entry string
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Funcs: map[string]*Function{}}
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Function { return p.Funcs[name] }

// Add registers a function with the program.
func (p *Program) Add(f *Function) *Function {
	p.Funcs[f.Name] = f
	return f
}

// EntryFunc returns the entry function.
func (p *Program) EntryFunc() *Function { return p.Funcs[p.Entry] }
