package ir

import (
	"strings"
	"testing"
)

// sumProgram builds: main() { s=0; for i in 0..n { s += i }; emit s; ret s }
func sumProgram(t testing.TB, n int64) *Program {
	t.Helper()
	fb := NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	exit := fb.NewBlock("exit")

	fb.SetBlock(entry)
	s := fb.Reg()
	i := fb.Reg()
	fb.ConstInto(s, 0)
	fb.ConstInto(i, 0)
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(OpCmpLT, R(i), Imm(n))
	fb.Br(R(c), body, exit)

	fb.SetBlock(body)
	fb.BinInto(OpAdd, s, R(s), R(i))
	fb.BinInto(OpAdd, i, R(i), Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	fb.Emit(R(s))
	fb.Ret(R(s))

	p := NewProgram("sum")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

func TestInterpSumLoop(t *testing.T) {
	p := sumProgram(t, 100)
	res, err := Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 4950 {
		t.Errorf("RetVal = %d, want 4950", res.RetVal)
	}
	if len(res.Output) != 1 || res.Output[0] != 4950 {
		t.Errorf("Output = %v, want [4950]", res.Output)
	}
	if res.Dynamic.Branches == 0 || res.Dynamic.Total < 100 {
		t.Errorf("dyn counts look wrong: %+v", res.Dynamic)
	}
}

func TestInterpCallsAndMemory(t *testing.T) {
	// store42(p) { mem[p] = 42; ret }
	cb := NewFunc("store42", 1)
	cb.NewBlock("entry")
	cb.Store(Imm(42), R(cb.Param(0)), 0)
	cb.RetVoid()

	// main() { p = alloc 64; store42(p); x = load p; ret x+1 }
	fb := NewFunc("main", 0)
	fb.NewBlock("entry")
	p := fb.Alloc(64)
	fb.Call("store42", R(p))
	x := fb.Load(R(p), 0)
	y := fb.Add(R(x), Imm(1))
	fb.Ret(R(y))

	prog := NewProgram("callmem")
	prog.Add(cb.MustDone())
	prog.Add(fb.MustDone())
	prog.Entry = "main"

	res, err := Interp(prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 43 {
		t.Errorf("RetVal = %d, want 43", res.RetVal)
	}
	if got := res.Mem.Load(HeapBase); got != 42 {
		t.Errorf("heap word = %d, want 42", got)
	}
}

func TestInterpRecursion(t *testing.T) {
	// fib(n) { if n < 2 ret n; ret fib(n-1)+fib(n-2) }
	fb := NewFunc("fib", 1)
	entry := fb.NewBlock("entry")
	base := fb.NewBlock("base")
	rec := fb.NewBlock("rec")
	fb.SetBlock(entry)
	c := fb.Bin(OpCmpLT, R(fb.Param(0)), Imm(2))
	fb.Br(R(c), base, rec)
	fb.SetBlock(base)
	fb.Ret(R(fb.Param(0)))
	fb.SetBlock(rec)
	n1 := fb.Sub(R(fb.Param(0)), Imm(1))
	n2 := fb.Sub(R(fb.Param(0)), Imm(2))
	f1 := fb.Call("fib", R(n1))
	f2 := fb.Call("fib", R(n2))
	s := fb.Add(R(f1), R(f2))
	fb.Ret(R(s))

	prog := NewProgram("fib")
	prog.Add(fb.MustDone())
	prog.Entry = "fib"
	res, err := Interp(prog, []int64{12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 144 {
		t.Errorf("fib(12) = %d, want 144", res.RetVal)
	}
}

func TestInterpAtomicsAndSelect(t *testing.T) {
	fb := NewFunc("main", 0)
	fb.NewBlock("entry")
	p := fb.Alloc(8)
	fb.Store(Imm(10), R(p), 0)
	old := fb.AtomicAdd(R(p), 0, Imm(5))           // old=10, mem=15
	cas := fb.AtomicCAS(R(p), 0, Imm(15), Imm(99)) // old=15, mem=99
	x := fb.AtomicXchg(R(p), 0, Imm(7))            // old=99, mem=7
	sel := fb.Select(R(old), R(cas), R(x))         // old != 0 -> cas = 15
	fin := fb.Load(R(p), 0)
	sum := fb.Add(R(sel), R(fin)) // 15 + 7
	fb.Ret(R(sum))
	prog := NewProgram("atomics")
	prog.Add(fb.MustDone())
	prog.Entry = "main"
	res, err := Interp(prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 22 {
		t.Errorf("RetVal = %d, want 22", res.RetVal)
	}
}

func TestInterpDivRemByZero(t *testing.T) {
	fb := NewFunc("main", 0)
	fb.NewBlock("entry")
	d := fb.Bin(OpDiv, Imm(10), Imm(0))
	r := fb.Bin(OpRem, Imm(10), Imm(0))
	s := fb.Add(R(d), R(r))
	fb.Ret(R(s))
	prog := NewProgram("divzero")
	prog.Add(fb.MustDone())
	prog.Entry = "main"
	res, err := Interp(prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 0 {
		t.Errorf("div/rem by zero = %d, want 0", res.RetVal)
	}
}

func TestVerifyRejectsUndefinedUse(t *testing.T) {
	f := &Function{Name: "bad", NumRegs: 2}
	f.Blocks = []*Block{{Name: "entry", Index: 0, Instrs: []Instr{
		{Op: OpAdd, Dst: 0, A: R(1), B: Imm(1)}, // r1 never defined
		{Op: OpRet, A: R(0), HasVal: true},
	}}}
	if err := VerifyFunc(f); err == nil {
		t.Fatal("expected verification error for use of undefined register")
	}
}

func TestVerifyRejectsMidBlockTerminator(t *testing.T) {
	f := &Function{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Name: "entry", Index: 0, Instrs: []Instr{
		{Op: OpRet},
		{Op: OpConst, Dst: 0, A: Imm(1)},
	}}}
	if err := VerifyFunc(f); err == nil {
		t.Fatal("expected verification error for mid-block terminator")
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	f := &Function{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Name: "entry", Index: 0, Instrs: []Instr{
		{Op: OpConst, Dst: 0, A: Imm(1)},
	}}}
	if err := VerifyFunc(f); err == nil {
		t.Fatal("expected verification error for missing terminator")
	}
}

func TestVerifyRejectsBadCallArity(t *testing.T) {
	callee := NewFunc("f", 2)
	callee.NewBlock("entry")
	callee.RetVoid()
	caller := NewFunc("main", 0)
	caller.NewBlock("entry")
	caller.Call("f", Imm(1)) // wrong arity
	caller.RetVoid()
	p := NewProgram("arity")
	p.Add(callee.MustDone())
	p.Add(caller.MustDone())
	p.Entry = "main"
	if err := VerifyProgram(p); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestVerifyRejectsUnknownCallee(t *testing.T) {
	caller := NewFunc("main", 0)
	caller.NewBlock("entry")
	caller.Call("nope")
	caller.RetVoid()
	p := NewProgram("unknown")
	p.Add(caller.MustDone())
	p.Entry = "main"
	if err := VerifyProgram(p); err == nil {
		t.Fatal("expected unknown-callee error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sumProgram(t, 10)
	q := p.Clone()
	q.Funcs["main"].Blocks[0].Instrs[0].A = Imm(999)
	if p.Funcs["main"].Blocks[0].Instrs[0].A.Imm == 999 {
		t.Fatal("clone shares instruction storage with original")
	}
	r1, err := Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RetVal != 45 {
		t.Errorf("original damaged by clone mutation: ret=%d", r1.RetVal)
	}
}

func TestUsesAndDef(t *testing.T) {
	in := Instr{Op: OpStore, A: R(3), B: R(4)}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != 3 || uses[1] != 4 {
		t.Errorf("store uses = %v, want [3 4]", uses)
	}
	if in.Def() != NoReg {
		t.Errorf("store def = %v, want NoReg", in.Def())
	}
	call := Instr{Op: OpCall, Dst: 7, Args: []Operand{R(1), Imm(5), R(2)}}
	uses = call.Uses(nil)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("call uses = %v, want [1 2]", uses)
	}
	if call.Def() != 7 {
		t.Errorf("call def = %v, want 7", call.Def())
	}
}

func TestEffAddrAlignment(t *testing.T) {
	regs := []int64{0x1005}
	ld := Instr{Op: OpLoad, Dst: 0, A: R(0), Off: 4}
	if got := EffAddr(&ld, regs); got != (0x1005+4)&^7 {
		t.Errorf("EffAddr = %#x", got)
	}
	st := Instr{Op: OpStore, A: Imm(1), B: R(0), Off: 0}
	if got := EffAddr(&st, regs); got != 0x1000 {
		t.Errorf("store EffAddr = %#x, want 0x1000", got)
	}
}

func TestDumpContainsStructure(t *testing.T) {
	p := sumProgram(t, 3)
	d := p.Dump()
	for _, want := range []string{"func main", "b0:", "br ", "emit ", "ret "} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestFlatMemSnapshotSorted(t *testing.T) {
	m := NewFlatMem()
	m.Store(0x20, 2)
	m.Store(0x10, 1)
	m.Store(0x30, 0) // zero values dropped from snapshots
	s := m.Snapshot()
	if len(s) != 2 || s[0].Addr != 0x10 || s[1].Addr != 0x20 {
		t.Errorf("snapshot = %v", s)
	}
}

func TestAllocAlignmentAndGrowth(t *testing.T) {
	m := NewFlatMem()
	a := m.Alloc(1)
	b := m.Alloc(65)
	c := m.Alloc(0)
	if a%64 != 0 || b%64 != 0 || c%64 != 0 {
		t.Errorf("allocations not 64B aligned: %x %x %x", a, b, c)
	}
	if b != a+64 || c != b+128 {
		t.Errorf("bump allocator spacing wrong: %x %x %x", a, b, c)
	}
}
