package ir

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Text serialization of programs: a stable, line-oriented format carrying
// the full structure — including compiler-produced metadata (region counts,
// recovery slices, live-across-call sets) — so compiled programs can be
// written by cwspc and executed later by cwspsim. MarshalText and
// UnmarshalText round-trip exactly.
//
// Format sketch:
//
//	program <name> entry=<fn>
//	func <name> params=<n> regs=<n> regions=<n>
//	block <name>
//	  <op> <fields...>        ; positional fields, one instruction per line
//	slice region=<id> entry=<blk>,<idx> live=<r...>
//	  <step fields>
//	liveacross <blk>,<idx> = <r...>
//	end
//
// Operands encode as r<N> (register), #<N> (immediate), or _ (absent).

// MarshalText writes p in the textual interchange format.
func (p *Program) MarshalText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "program %s entry=%s\n", p.Name, p.Entry)

	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		f := p.Funcs[name]
		fmt.Fprintf(bw, "func %s params=%d regs=%d regions=%d\n", f.Name, f.NParams, f.NumRegs, f.NumRegions)
		for _, b := range f.Blocks {
			fmt.Fprintf(bw, "block %s\n", sanitizeName(b.Name))
			for i := range b.Instrs {
				bw.WriteString("  ")
				bw.WriteString(encodeInstr(&b.Instrs[i]))
				bw.WriteString("\n")
			}
		}
		if len(f.Slices) > 0 {
			ids := make([]int, 0, len(f.Slices))
			for id := range f.Slices {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				rs := f.Slices[id]
				fmt.Fprintf(bw, "slice region=%d entry=%d,%d live=%s\n",
					rs.RegionID, rs.Entry.Block, rs.Entry.Index, encodeRegs(rs.LiveIn))
				for _, st := range rs.Steps {
					fmt.Fprintf(bw, "  step %d %d %d %d %d %d\n",
						st.Op, st.Dst, st.Src, st.Src2, st.Imm, st.ALUOp)
				}
			}
		}
		if len(f.LiveAcross) > 0 {
			refs := make([]InstrRef, 0, len(f.LiveAcross))
			for r := range f.LiveAcross {
				refs = append(refs, r)
			}
			sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
			for _, r := range refs {
				fmt.Fprintf(bw, "liveacross %d,%d = %s\n", r.Block, r.Index, encodeRegs(f.LiveAcross[r]))
			}
		}
	}
	bw.WriteString("end\n")
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "b"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

func encodeRegs(rs []Reg) string {
	if len(rs) == 0 {
		return "-"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = strconv.Itoa(int(r))
	}
	return strings.Join(parts, ",")
}

func decodeRegs(s string) ([]Reg, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Reg, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = Reg(v)
	}
	return out, nil
}

func encodeOperand(o Operand) string {
	switch o.Kind {
	case OperandReg:
		return "r" + strconv.Itoa(int(o.Reg))
	case OperandImm:
		return "#" + strconv.FormatInt(o.Imm, 10)
	}
	return "_"
}

func decodeOperand(s string) (Operand, error) {
	switch {
	case s == "_":
		return Operand{}, nil
	case strings.HasPrefix(s, "r"):
		v, err := strconv.Atoi(s[1:])
		if err != nil {
			return Operand{}, err
		}
		return R(Reg(v)), nil
	case strings.HasPrefix(s, "#"):
		v, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return Operand{}, err
		}
		return Imm(v), nil
	}
	return Operand{}, fmt.Errorf("ir: bad operand %q", s)
}

// encodeInstr renders one instruction as positional fields:
// op dst A B C off hasval then else regionID callee nargs args...
func encodeInstr(in *Instr) string {
	fields := []string{
		strconv.Itoa(int(in.Op)),
		strconv.Itoa(int(in.Dst)),
		encodeOperand(in.A),
		encodeOperand(in.B),
		encodeOperand(in.C),
		strconv.FormatInt(in.Off, 10),
		boolStr(in.HasVal),
		strconv.Itoa(in.Then),
		strconv.Itoa(in.Else),
		strconv.Itoa(in.RegionID),
	}
	if in.Op == OpCall {
		fields = append(fields, in.Callee, strconv.Itoa(len(in.Args)))
		for _, a := range in.Args {
			fields = append(fields, encodeOperand(a))
		}
	}
	return strings.Join(fields, " ")
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func decodeInstr(fields []string) (Instr, error) {
	if len(fields) < 10 {
		return Instr{}, fmt.Errorf("ir: truncated instruction line")
	}
	var in Instr
	op, err := strconv.Atoi(fields[0])
	if err != nil || op <= int(OpInvalid) || op >= int(opMax) {
		return Instr{}, fmt.Errorf("ir: bad opcode %q", fields[0])
	}
	in.Op = Op(op)
	dst, err := strconv.Atoi(fields[1])
	if err != nil {
		return Instr{}, err
	}
	in.Dst = Reg(dst)
	if in.A, err = decodeOperand(fields[2]); err != nil {
		return Instr{}, err
	}
	if in.B, err = decodeOperand(fields[3]); err != nil {
		return Instr{}, err
	}
	if in.C, err = decodeOperand(fields[4]); err != nil {
		return Instr{}, err
	}
	if in.Off, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
		return Instr{}, err
	}
	in.HasVal = fields[6] == "1"
	if in.Then, err = strconv.Atoi(fields[7]); err != nil {
		return Instr{}, err
	}
	if in.Else, err = strconv.Atoi(fields[8]); err != nil {
		return Instr{}, err
	}
	if in.RegionID, err = strconv.Atoi(fields[9]); err != nil {
		return Instr{}, err
	}
	in.AliasSet = -1
	if in.Op == OpCall {
		if len(fields) < 12 {
			return Instr{}, fmt.Errorf("ir: truncated call")
		}
		in.Callee = fields[10]
		n, err := strconv.Atoi(fields[11])
		if err != nil || n < 0 || len(fields) != 12+n {
			return Instr{}, fmt.Errorf("ir: bad call arity")
		}
		for i := 0; i < n; i++ {
			a, err := decodeOperand(fields[12+i])
			if err != nil {
				return Instr{}, err
			}
			in.Args = append(in.Args, a)
		}
	}
	return in, nil
}

// UnmarshalText reads a program in the MarshalText format and verifies it.
func UnmarshalText(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var p *Program
	var f *Function
	var blk *Block
	var slice *RecoverySlice
	lineNo := 0

	flushSlice := func() {
		if slice != nil && f != nil {
			if f.Slices == nil {
				f.Slices = map[int]RecoverySlice{}
			}
			f.Slices[slice.RegionID] = *slice
			slice = nil
		}
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "program":
			if len(fields) != 3 || !strings.HasPrefix(fields[2], "entry=") {
				return nil, fmt.Errorf("ir: line %d: bad program header", lineNo)
			}
			p = NewProgram(fields[1])
			p.Entry = strings.TrimPrefix(fields[2], "entry=")
		case "func":
			flushSlice()
			if p == nil {
				return nil, fmt.Errorf("ir: line %d: func before program", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("ir: line %d: bad func header", lineNo)
			}
			f = &Function{Name: fields[1]}
			for _, kv := range fields[2:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("ir: line %d: bad func field %q", lineNo, kv)
				}
				v, err := strconv.Atoi(parts[1])
				if err != nil {
					return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
				}
				switch parts[0] {
				case "params":
					f.NParams = v
				case "regs":
					f.NumRegs = v
				case "regions":
					f.NumRegions = v
				}
			}
			p.Add(f)
			blk = nil
		case "block":
			flushSlice()
			if f == nil {
				return nil, fmt.Errorf("ir: line %d: block before func", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("ir: line %d: bad block header", lineNo)
			}
			blk = &Block{Name: fields[1], Index: len(f.Blocks)}
			f.Blocks = append(f.Blocks, blk)
		case "slice":
			flushSlice()
			if f == nil || len(fields) != 4 {
				return nil, fmt.Errorf("ir: line %d: bad slice header", lineNo)
			}
			var rs RecoverySlice
			if _, err := fmt.Sscanf(fields[1], "region=%d", &rs.RegionID); err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[2], "entry=%d,%d", &rs.Entry.Block, &rs.Entry.Index); err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			live, err := decodeRegs(strings.TrimPrefix(fields[3], "live="))
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			rs.LiveIn = live
			slice = &rs
			blk = nil
		case "step":
			if slice == nil || len(fields) != 7 {
				return nil, fmt.Errorf("ir: line %d: step outside slice", lineNo)
			}
			var vals [6]int64
			for i := 0; i < 6; i++ {
				v, err := strconv.ParseInt(fields[1+i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
				}
				vals[i] = v
			}
			slice.Steps = append(slice.Steps, SliceStep{
				Op: SliceOp(vals[0]), Dst: Reg(vals[1]), Src: Reg(vals[2]),
				Src2: Reg(vals[3]), Imm: vals[4], ALUOp: Op(vals[5]),
			})
		case "liveacross":
			flushSlice()
			if f == nil || len(fields) != 4 || fields[2] != "=" {
				return nil, fmt.Errorf("ir: line %d: bad liveacross", lineNo)
			}
			var ref InstrRef
			if _, err := fmt.Sscanf(fields[1], "%d,%d", &ref.Block, &ref.Index); err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			regs, err := decodeRegs(fields[3])
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			if f.LiveAcross == nil {
				f.LiveAcross = map[InstrRef][]Reg{}
			}
			f.LiveAcross[ref] = regs
		case "end":
			flushSlice()
			if p == nil {
				return nil, fmt.Errorf("ir: line %d: end before program", lineNo)
			}
			if err := VerifyProgram(p); err != nil {
				return nil, err
			}
			return p, nil
		default:
			// An instruction line inside the current block.
			if blk == nil {
				return nil, fmt.Errorf("ir: line %d: instruction outside block", lineNo)
			}
			in, err := decodeInstr(fields)
			if err != nil {
				return nil, fmt.Errorf("ir: line %d: %v", lineNo, err)
			}
			blk.Instrs = append(blk.Instrs, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("ir: missing 'end'")
}
