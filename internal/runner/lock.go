package runner

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// lockFileName is the per-cache-directory lock marker. Exactly one live
// Store handle — in this process or any other — may own a cache directory
// at a time: the batch CLIs owned their shard implicitly by being the only
// process for the life of a sweep, but a long-running daemon sharing a
// cache with ad-hoc CLI runs needs the ownership made explicit, or two
// writers would interleave rewrite-and-rename flushes and silently drop
// each other's records.
const lockFileName = "LOCK"

// ErrLocked wraps every lock-acquisition conflict; test with
// errors.Is(err, ErrLocked).
var ErrLocked = errors.New("runner: store dir is locked")

// LockError reports who owns a contended cache directory.
type LockError struct {
	Dir      string
	OwnerPID int
}

func (e *LockError) Error() string {
	return fmt.Sprintf("runner: store %s is locked by pid %d (locks from dead processes release automatically)", e.Dir, e.OwnerPID)
}

// Unwrap makes errors.Is(err, ErrLocked) work.
func (e *LockError) Unwrap() error { return ErrLocked }

// LockDir takes exclusive ownership of a directory via flock(2) on its
// LOCK file, returning the held descriptor to release with UnlockDir.
// Ownership is the kernel lock, not the file's existence: the kernel
// drops the lock with the descriptor, so a crashed owner leaves nothing
// stale to reclaim, and there is no check-then-remove window in which two
// racers can both "reclaim" a dead owner's lock. A live owner —
// including this very process holding another handle, since flock locks
// conflict per open descriptor — surfaces as *LockError. The store locks
// its cache directory with it; the experiment service reuses it for the
// campaign journal directory (both need the same one-live-owner
// discipline across daemon crashes).
func LockDir(dir string) (*os.File, error) { return acquireLock(dir) }

// UnlockDir releases a LockDir descriptor (see releaseLock for why the
// LOCK file itself is left in place).
func UnlockDir(f *os.File) { releaseLock(f) }

// acquireLock implements LockDir.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: lock store: %w", err)
	}
	if err := flockNB(f); err != nil {
		pid := lockOwner(path)
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, &LockError{Dir: dir, OwnerPID: pid}
		}
		return nil, fmt.Errorf("runner: lock store: %w", err)
	}
	// Record the owner purely for diagnostics (LockError reports it to the
	// loser); exclusion never depends on the file content.
	if err := f.Truncate(0); err == nil {
		f.Seek(0, io.SeekStart)
		fmt.Fprintf(f, "%d %s\n", os.Getpid(), time.Now().UTC().Format(time.RFC3339))
	}
	return f, nil
}

// flockNB grabs a non-blocking exclusive flock, retrying EINTR.
func flockNB(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if !errors.Is(err, syscall.EINTR) {
			return err
		}
	}
}

// releaseLock drops the lock by closing the descriptor. The lock file is
// deliberately left in place: removing it would reopen a two-owner race —
// a contender that already opened the old inode could flock it the moment
// we release, while a third opener locks a fresh file at the same path.
// An orphaned LOCK file carries no ownership, only the last owner's pid.
func releaseLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}

// lockOwner parses the pid recorded in a lock file (0 when unreadable).
func lockOwner(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) == 0 {
		return 0
	}
	pid, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0
	}
	return pid
}
