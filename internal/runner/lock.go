package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// lockFileName is the per-cache-directory lock marker. Exactly one live
// Store handle — in this process or any other — may own a cache directory
// at a time: the batch CLIs owned their shard implicitly by being the only
// process for the life of a sweep, but a long-running daemon sharing a
// cache with ad-hoc CLI runs needs the ownership made explicit, or two
// writers would interleave rewrite-and-rename flushes and silently drop
// each other's records.
const lockFileName = "LOCK"

// ErrLocked wraps every lock-acquisition conflict; test with
// errors.Is(err, ErrLocked).
var ErrLocked = errors.New("runner: store dir is locked")

// LockError reports who owns a contended cache directory.
type LockError struct {
	Dir      string
	OwnerPID int
}

func (e *LockError) Error() string {
	return fmt.Sprintf("runner: store %s is locked by pid %d (stale locks from dead processes are reclaimed automatically)", e.Dir, e.OwnerPID)
}

// Unwrap makes errors.Is(err, ErrLocked) work.
func (e *LockError) Unwrap() error { return ErrLocked }

// acquireLock takes exclusive ownership of dir, returning the lock path to
// remove on Close. A lock whose recorded owner is no longer alive is stale
// (a crashed sweep, or any pre-Close CLI exit) and is reclaimed; a live
// owner — including this very process holding another handle — is a
// conflict surfaced as *LockError.
func acquireLock(dir string) (string, error) {
	path := filepath.Join(dir, lockFileName)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d %s\n", os.Getpid(), time.Now().UTC().Format(time.RFC3339))
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return "", fmt.Errorf("runner: write lock: %w", cerr)
			}
			return path, nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("runner: lock store: %w", err)
		}
		pid := lockOwner(path)
		if pid > 0 && pidAlive(pid) {
			return "", &LockError{Dir: dir, OwnerPID: pid}
		}
		// Stale (owner dead or unreadable): reclaim and retry. Two racers
		// both reclaiming lose to O_EXCL on the next attempt.
		os.Remove(path)
	}
	return "", &LockError{Dir: dir, OwnerPID: lockOwner(path)}
}

// lockOwner parses the pid recorded in a lock file (0 when unreadable).
func lockOwner(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) == 0 {
		return 0
	}
	pid, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0
	}
	return pid
}

// pidAlive reports whether a process exists. Signal 0 probes without
// delivering; EPERM means "exists but not ours", which still counts as
// alive. Platforms without signal support report dead, degrading to
// last-writer-wins — no worse than the pre-lock behavior there.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
