package runner

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cwsp/internal/telemetry"
)

// Progress accumulates pool telemetry across every Run of a pool's
// lifetime: cells submitted/served-from-cache/executed, per-cell latency
// (log2 histogram), and a worker-occupancy time series sampled at every
// cell start/finish (the sampler's "cycle" axis is milliseconds since the
// pool was created). One Progress is shared by all experiments of a
// `cwspbench -exp all` invocation, so the manifest reports whole-sweep
// totals.
type Progress struct {
	mu      sync.Mutex
	start   time.Time
	cells   int64 // cells submitted
	hits    int64 // served from the persistent store
	shared  int64 // served by an identical cell in the same batch
	exec    int64 // actually executed
	retries int64
	panics  int64
	active  int64 // currently running cells
	wall    time.Duration

	lat *telemetry.Histogram // per-executed-cell wall latency, microseconds
	occ *telemetry.Sampler   // cols: active, done

	log io.Writer
}

func newProgress(log io.Writer) *Progress {
	return &Progress{
		start: time.Now(),
		lat:   telemetry.NewHistogram("cell_latency_us"),
		occ:   telemetry.NewSampler(1, 4096, "active", "done"),
		log:   log,
	}
}

// NewProgress builds a standalone Progress for injection via
// Options.Progress (the experiment service allocates one per campaign so
// per-campaign pace survives across the campaign's pools).
func NewProgress() *Progress { return newProgress(nil) }

// Restart re-stamps the pace clock. The experiment service allocates a
// campaign's Progress at submission so /progress is readable while the
// campaign queues, but ElapsedMS/CellsPerSec/ETA must measure execution
// pace, not admission-queue wait — under backpressure the queue wait
// dominates and would skew the rate low and the ETA long. Call only
// before any cell activity: the occupancy series is timed against start.
func (p *Progress) Restart() {
	p.mu.Lock()
	p.start = time.Now()
	p.mu.Unlock()
}

func (p *Progress) setLog(w io.Writer) {
	p.mu.Lock()
	p.log = w
	p.mu.Unlock()
}

func (p *Progress) sampleLocked() {
	p.occ.Record(time.Since(p.start).Milliseconds(), float64(p.active), float64(p.hits+p.shared+p.exec))
}

func (p *Progress) cellStart() {
	p.mu.Lock()
	p.active++
	p.sampleLocked()
	p.mu.Unlock()
}

func (p *Progress) cellDone(d time.Duration, key Key) {
	p.mu.Lock()
	p.active--
	p.exec++
	p.lat.Observe(d.Microseconds())
	p.sampleLocked()
	log := p.log
	p.mu.Unlock()
	if log != nil {
		fmt.Fprintf(log, "  cell %-44s %8.1fms\n", key.String(), float64(d.Microseconds())/1e3)
	}
}

func (p *Progress) cellHit(fromStore bool) {
	p.mu.Lock()
	if fromStore {
		p.hits++
	} else {
		p.shared++
	}
	p.sampleLocked()
	p.mu.Unlock()
}

func (p *Progress) addCells(n int) {
	p.mu.Lock()
	p.cells += int64(n)
	p.mu.Unlock()
}

func (p *Progress) addRetry() {
	p.mu.Lock()
	p.retries++
	p.mu.Unlock()
}

func (p *Progress) addPanic() {
	p.mu.Lock()
	p.panics++
	p.mu.Unlock()
}

func (p *Progress) addWall(d time.Duration) {
	p.mu.Lock()
	p.wall += d
	p.mu.Unlock()
}

// Cells returns the number of cells submitted across every Run.
func (p *Progress) Cells() int64 { p.mu.Lock(); defer p.mu.Unlock(); return p.cells }

// Hits returns cells served from the persistent store.
func (p *Progress) Hits() int64 { p.mu.Lock(); defer p.mu.Unlock(); return p.hits }

// Executed returns cells actually simulated (store + in-batch misses).
func (p *Progress) Executed() int64 { p.mu.Lock(); defer p.mu.Unlock(); return p.exec }

// Occupancy returns the worker-occupancy time series.
func (p *Progress) Occupancy() *telemetry.Sampler { return p.occ }

// Latency returns the per-executed-cell latency histogram (microseconds).
func (p *Progress) Latency() *telemetry.Histogram { return p.lat }

// LatencySnapshot returns a point-in-time copy of the latency histogram,
// safe to read (e.g. render to /metrics) while workers keep observing —
// the live Latency() pointer is only safe after every Run returned.
func (p *Progress) LatencySnapshot() *telemetry.Histogram {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := *p.lat
	return &h
}

// ProgressSnapshot is a point-in-time pace digest: the per-campaign
// /progress payload of the experiment service.
type ProgressSnapshot struct {
	Cells    int64 `json:"cells"`
	Done     int64 `json:"done"` // hits + shared + executed
	Active   int64 `json:"active"`
	Hits     int64 `json:"hits"`
	Shared   int64 `json:"shared,omitempty"`
	Executed int64 `json:"executed"`
	// HitRatio is (hits+shared)/done — the fraction of completed cells the
	// content-addressed cache served without simulating.
	HitRatio    float64 `json:"hit_ratio"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// ETAMS extrapolates the remaining cells at the observed rate: 0 when
	// done (never negative — cached cells completing faster than a tick
	// window used to drive the extrapolation below zero), -1 while the
	// denominator is unknown.
	ETAMS int64 `json:"eta_ms"`
}

// maxETAMS caps the extrapolation (≈29 years) so the float→int conversion
// can never overflow into a negative ETA when the observed rate is tiny
// against a huge remaining count.
const maxETAMS = int64(1) << 50

// Snapshot digests the progress for live readers. Safe to call while
// workers are running.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Cells: p.cells, Active: p.active,
		Hits: p.hits, Shared: p.shared, Executed: p.exec,
		ETAMS: -1,
	}
	s.Done = p.hits + p.shared + p.exec
	if s.Done > 0 {
		s.HitRatio = float64(p.hits+p.shared) / float64(s.Done)
	}
	s.ElapsedMS = time.Since(p.start).Milliseconds()
	if s.ElapsedMS > 0 && s.Done > 0 {
		s.CellsPerSec = float64(s.Done) / (float64(s.ElapsedMS) / 1000)
	}
	switch {
	case s.Cells <= 0:
		// Unknown denominator: keep -1.
	case s.Done >= s.Cells:
		s.ETAMS = 0
	case s.CellsPerSec > 0:
		eta := float64(s.Cells-s.Done) / s.CellsPerSec * 1000
		switch {
		case !(eta > 0): // non-positive or NaN
			s.ETAMS = 0
		case eta > float64(maxETAMS):
			s.ETAMS = maxETAMS
		default:
			s.ETAMS = int64(eta)
		}
	}
	return s
}

// Info digests the progress for a run manifest.
func (p *Progress) Info(jobs int) telemetry.RunnerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	info := telemetry.RunnerInfo{
		Jobs:      jobs,
		Cells:     p.cells,
		CacheHits: p.hits,
		Shared:    p.shared,
		Executed:  p.exec,
		Retries:   p.retries,
		Panics:    p.panics,
		WallMS:    p.wall.Milliseconds(),
	}
	if p.lat.Count() > 0 {
		s := p.lat.Summary()
		info.CellLatencyUS = &s
	}
	return info
}

// String renders a one-line summary for progress logs.
func (p *Progress) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("runner{cells=%d hits=%d shared=%d executed=%d wall=%v}",
		p.cells, p.hits, p.shared, p.exec, p.wall.Round(time.Millisecond))
}
