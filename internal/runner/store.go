package runner

import (
	"bufio"
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cwsp/internal/telemetry/live"
)

// storeVersion is embedded in every shard filename; bumping it orphans (but
// does not delete) caches written by incompatible record layouts. Compact
// removes orphaned generations.
const storeVersion = 1

// ErrClosed is returned by every mutating Store method after Close. The
// pre-Close behavior was a silent race: a straggling pool worker could Put
// into (or Flush) a store whose owner had already moved on, resurrecting a
// shard file after the directory was supposedly quiescent.
var ErrClosed = errors.New("runner: store is closed")

// record is one JSONL line of a shard file. The key is stored alongside the
// signature purely for human inspection of cache files; lookups go through
// the signature alone.
type record struct {
	Sig string          `json:"sig"`
	Key Key             `json:"key"`
	Val json.RawMessage `json:"val"`
}

// recSize approximates one record's on-disk footprint (JSONL line length)
// for the eviction budget without marshaling on every Put.
func recSize(r record) int64 {
	k := r.Key
	return int64(2*len(r.Sig)+len(r.Val)+
		len(k.Kind)+len(k.Workload)+len(k.Scale)+len(k.Compile)+
		len(k.Scheme)+len(k.CfgSig)+len(k.Salt)) + 96
}

// lruEntry is one cached record plus its budget charge; list order is
// recency (front = most recently used).
type lruEntry struct {
	rec  record
	size int64
}

// Store is the persistent result cache: a directory of 16 sharded JSONL
// files, one record per completed cell, keyed by content signature. All
// methods are safe for concurrent use, and exactly one live handle may own
// a directory at a time (a flock(2)-held lock file keeps a daemon and
// ad-hoc CLI runs from interleaving flushes; the kernel releases a dead
// owner's lock automatically). Writes
// accumulate in memory and reach disk on Flush, which rewrites each dirty
// shard to a temp file and atomically renames it into place — a crash
// mid-flush leaves either the old or the new shard, never a torn one, so a
// partially completed sweep always resumes from a consistent cache.
//
// For service life the store additionally supports log compaction
// (Compact: rewrite every shard, dropping corrupt or superseded lines and
// orphaned cache generations) and size-bounded LRU eviction keyed on the
// content signature (SetMaxBytes): the shared cache of a long-running
// daemon converges to the working set instead of growing without bound.
type Store struct {
	dir      string
	lockFile *os.File // flock(2)-held LOCK descriptor; closed on Close

	mu        sync.Mutex
	entries   map[string]*list.Element // signature → element (*lruEntry)
	lru       *list.List               // front = most recently used
	dirty     map[string]struct{}      // shards with unflushed entries
	loaded    int                      // records read from disk at Open
	diskLines int                      // JSONL lines scanned at Open (incl corrupt)
	bytes     int64                    // approximate footprint of entries
	maxBytes  int64                    // 0 = unbounded
	evicted   int64
	closed    bool
	bus       *live.Bus // optional flush-event sink
}

// SetBus attaches a live event bus; every completed Flush publishes a
// StoreFlush event (shards rewritten, records now on disk).
func (s *Store) SetBus(b *live.Bus) {
	s.mu.Lock()
	s.bus = b
	s.mu.Unlock()
}

// OpenStore opens (creating if needed) the cache directory, acquires its
// lock, and loads every shard. Unparseable lines — a torn append from a
// pre-atomic-write tool, or hand editing — are skipped rather than failing
// the whole cache; a later superseding line for the same signature wins.
// A directory owned by another live Store handle fails with *LockError
// (errors.Is ErrLocked); the kernel releases a dead process's lock with
// its descriptors, so crashed owners never wedge the directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty store dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: create store: %w", err)
	}
	lockFile, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		lockFile: lockFile,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		dirty:    map[string]struct{}{},
	}
	for i := 0; i < 16; i++ {
		shard := fmt.Sprintf("%x", i)
		f, err := os.Open(s.shardPath(shard))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			s.unlock()
			return nil, fmt.Errorf("runner: open shard: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			s.diskLines++
			var r record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.Sig == "" {
				continue
			}
			s.insertLocked(r)
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			s.unlock()
			return nil, fmt.Errorf("runner: read shard: %w", err)
		}
	}
	s.loaded = len(s.entries)
	return s, nil
}

// OpenStoreWait is OpenStore with patience for a dying previous owner:
// while the directory is still flocked it retries until wait elapses. A
// daemon restarting after a SIGKILL races the kernel reaping its
// predecessor — the flock releases with the dead process's descriptors,
// so the successor only needs to outwait the reaping, never to reclaim
// anything. wait <= 0 degenerates to a single OpenStore attempt.
func OpenStoreWait(dir string, wait time.Duration) (*Store, error) {
	deadline := time.Now().Add(wait)
	for {
		s, err := OpenStore(dir)
		if err == nil || !errors.Is(err, ErrLocked) || !time.Now().Before(deadline) {
			return s, err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// insertLocked adds or supersedes one record at the MRU position.
func (s *Store) insertLocked(r record) {
	if el, ok := s.entries[r.Sig]; ok {
		old := el.Value.(*lruEntry)
		s.bytes -= old.size
		old.rec = r
		old.size = recSize(r)
		s.bytes += old.size
		s.lru.MoveToFront(el)
		return
	}
	e := &lruEntry{rec: r, size: recSize(r)}
	s.entries[r.Sig] = s.lru.PushFront(e)
	s.bytes += e.size
}

// evictLocked drops least-recently-used records until the footprint fits
// the budget (always retaining at least one record, so a single oversized
// result cannot wedge the cache into thrashing). Evicted entries' shards
// are marked dirty so the next Flush removes them from disk too.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*lruEntry)
		s.lru.Remove(el)
		delete(s.entries, e.rec.Sig)
		s.bytes -= e.size
		s.evicted++
		s.dirty[e.rec.Sig[:1]] = struct{}{}
	}
}

// SetMaxBytes bounds the cache's approximate in-memory/on-disk footprint;
// 0 removes the bound. Shrinking below the current footprint evicts
// immediately (least recently used first).
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	s.maxBytes = n
	s.evictLocked()
	s.mu.Unlock()
}

func (s *Store) shardPath(shard string) string {
	return filepath.Join(s.dir, fmt.Sprintf("cells-v%d-%s.jsonl", storeVersion, shard))
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of cached results (disk + pending).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Loaded returns how many records the store held when opened.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded
}

// Bytes returns the approximate footprint of the cached records.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evicted returns how many records LRU eviction has dropped.
func (s *Store) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// StoreStats digests the store for service endpoints and manifests.
type StoreStats struct {
	Dir      string `json:"dir"`
	Records  int    `json:"records"`
	Loaded   int    `json:"loaded"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes,omitempty"`
	Evicted  int64  `json:"evicted,omitempty"`
}

// Stats returns a point-in-time digest.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Dir: s.dir, Records: len(s.entries), Loaded: s.loaded,
		Bytes: s.bytes, MaxBytes: s.maxBytes, Evicted: s.evicted,
	}
}

// Get returns the cached result for a signature (and refreshes its
// recency). A closed store misses everything rather than erroring: reads
// during teardown degrade to recomputes, not corruption.
func (s *Store) Get(sig string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	el, ok := s.entries[sig]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*lruEntry).rec.Val, true
}

// Put records a result; it reaches disk on the next Flush. Returns
// ErrClosed after Close.
func (s *Store) Put(key Key, val json.RawMessage) error {
	sig := key.Signature()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.insertLocked(record{Sig: sig, Key: key, Val: val})
	s.dirty[key.Shard()] = struct{}{}
	s.evictLocked()
	return nil
}

// Flush rewrites every dirty shard atomically (temp file + rename).
// Records are written in sorted signature order so a flushed shard's bytes
// are a pure function of its contents. The store lock is held across the
// rewrite: a Put racing a concurrent flush must not have its dirty mark
// cleared without its record reaching disk, and shard files are small
// enough (≤1/16th of the cache) that the stall is negligible next to the
// simulations the pool is running. Returns ErrClosed after Close.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	shards := make([]string, 0, len(s.dirty))
	for sh := range s.dirty {
		shards = append(shards, sh)
	}
	sort.Strings(shards)
	byShard := map[string][]record{}
	for el := s.lru.Front(); el != nil; el = el.Next() {
		r := el.Value.(*lruEntry).rec
		sh := r.Sig[:1]
		byShard[sh] = append(byShard[sh], r)
	}

	for _, sh := range shards {
		recs := byShard[sh]
		if len(recs) == 0 {
			// Every record of this shard was evicted: drop the file.
			if err := os.Remove(s.shardPath(sh)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("runner: flush: %w", err)
			}
			delete(s.dirty, sh)
			continue
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Sig < recs[j].Sig })
		tmp, err := os.CreateTemp(s.dir, "cells-*.tmp")
		if err != nil {
			return fmt.Errorf("runner: flush: %w", err)
		}
		bw := bufio.NewWriter(tmp)
		enc := json.NewEncoder(bw)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				tmp.Close()
				os.Remove(tmp.Name())
				return fmt.Errorf("runner: flush: %w", err)
			}
		}
		if err := bw.Flush(); err == nil {
			err = tmp.Close()
		} else {
			tmp.Close()
		}
		if err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("runner: flush: %w", err)
		}
		if err := os.Rename(tmp.Name(), s.shardPath(sh)); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("runner: flush: %w", err)
		}
		delete(s.dirty, sh)
	}
	if len(shards) > 0 && s.bus != nil {
		s.bus.Publish(live.Event{Kind: live.StoreFlush, Shards: len(shards), Records: len(s.entries)})
	}
	return nil
}

// CompactStats reports what one Compact pass rewrote.
type CompactStats struct {
	// LinesBefore is every JSONL line on disk before the pass, including
	// corrupt lines, superseded duplicates, and orphaned generations.
	LinesBefore int `json:"lines_before"`
	// Records is the live record count after the pass.
	Records int `json:"records"`
	// Dropped is LinesBefore minus Records: the garbage reclaimed.
	Dropped int `json:"dropped"`
	// OrphanFiles counts removed shard files from other store versions.
	OrphanFiles int `json:"orphan_files,omitempty"`
}

// Compact rewrites every shard from the live record set, dropping corrupt
// lines, superseded duplicates, evicted records, and whole shard files left
// by incompatible store versions (orphaned cache generations). A daemon
// runs this periodically so a cache that has lived through many code-salt
// bumps and evictions converges back to exactly its live records.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st CompactStats
	if s.closed {
		return st, ErrClosed
	}

	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("runner: compact: %w", err)
	}
	curPrefix := fmt.Sprintf("cells-v%d-", storeVersion)
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "cells-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		path := filepath.Join(s.dir, name)
		n, err := countLines(path)
		if err != nil {
			return st, fmt.Errorf("runner: compact: %w", err)
		}
		st.LinesBefore += n
		if !strings.HasPrefix(name, curPrefix) {
			// A shard from another storeVersion: unreachable by this build,
			// pure disk waste.
			if err := os.Remove(path); err != nil {
				return st, fmt.Errorf("runner: compact: %w", err)
			}
			st.OrphanFiles++
		}
	}

	// Mark every current-generation shard dirty — existing files must be
	// rewritten (or removed, when all their records were evicted or were
	// corrupt) and pending records must reach disk.
	for i := 0; i < 16; i++ {
		sh := fmt.Sprintf("%x", i)
		if _, err := os.Stat(s.shardPath(sh)); err == nil {
			s.dirty[sh] = struct{}{}
		}
	}
	for el := s.lru.Front(); el != nil; el = el.Next() {
		s.dirty[el.Value.(*lruEntry).rec.Sig[:1]] = struct{}{}
	}
	if err := s.flushLocked(); err != nil {
		return st, err
	}
	st.Records = len(s.entries)
	st.Dropped = st.LinesBefore - st.Records
	if st.Dropped < 0 {
		st.Dropped = 0
	}
	return st, nil
}

// countLines counts newline-terminated lines (a trailing partial line — a
// torn append — counts too: it is exactly the garbage compaction drops).
func countLines(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := bytes.Count(b, []byte{'\n'})
	if len(b) > 0 && b[len(b)-1] != '\n' {
		n++
	}
	return n, nil
}

// Close flushes pending records, marks the store closed (subsequent Put
// and Flush return ErrClosed, Get misses), and releases the directory
// lock. Closing an already-closed store is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	s.mu.Unlock()
	s.unlock()
	return err
}

// unlock releases the directory lock (the flock drops with the
// descriptor; the LOCK file itself stays behind as an inert marker).
func (s *Store) unlock() {
	releaseLock(s.lockFile)
}
