package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cwsp/internal/telemetry/live"
)

// storeVersion is embedded in every shard filename; bumping it orphans (but
// does not delete) caches written by incompatible record layouts.
const storeVersion = 1

// record is one JSONL line of a shard file. The key is stored alongside the
// signature purely for human inspection of cache files; lookups go through
// the signature alone.
type record struct {
	Sig string          `json:"sig"`
	Key Key             `json:"key"`
	Val json.RawMessage `json:"val"`
}

// Store is the persistent result cache: a directory of 16 sharded JSONL
// files, one record per completed cell, keyed by content signature. All
// methods are safe for concurrent use. Writes accumulate in memory and
// reach disk on Flush, which rewrites each dirty shard to a temp file and
// atomically renames it into place — a crash mid-flush leaves either the
// old or the new shard, never a torn one, so a partially completed sweep
// always resumes from a consistent cache.
type Store struct {
	dir string

	mu      sync.Mutex
	entries map[string]record   // signature → record (disk + pending)
	dirty   map[string]struct{} // shards with unflushed entries
	loaded  int                 // records read from disk at Open
	bus     *live.Bus           // optional flush-event sink
}

// SetBus attaches a live event bus; every completed Flush publishes a
// StoreFlush event (shards rewritten, records now on disk).
func (s *Store) SetBus(b *live.Bus) {
	s.mu.Lock()
	s.bus = b
	s.mu.Unlock()
}

// OpenStore opens (creating if needed) the cache directory and loads every
// shard. Unparseable lines — a torn append from a pre-atomic-write tool, or
// hand editing — are skipped rather than failing the whole cache.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty store dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: create store: %w", err)
	}
	s := &Store{
		dir:     dir,
		entries: map[string]record{},
		dirty:   map[string]struct{}{},
	}
	for i := 0; i < 16; i++ {
		shard := fmt.Sprintf("%x", i)
		f, err := os.Open(s.shardPath(shard))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("runner: open shard: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			var r record
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.Sig == "" {
				continue
			}
			s.entries[r.Sig] = r
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("runner: read shard: %w", err)
		}
	}
	s.loaded = len(s.entries)
	return s, nil
}

func (s *Store) shardPath(shard string) string {
	return filepath.Join(s.dir, fmt.Sprintf("cells-v%d-%s.jsonl", storeVersion, shard))
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of cached results (disk + pending).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Loaded returns how many records the store held when opened.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded
}

// Get returns the cached result for a signature.
func (s *Store) Get(sig string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.entries[sig]
	return r.Val, ok
}

// Put records a result; it reaches disk on the next Flush.
func (s *Store) Put(key Key, val json.RawMessage) {
	sig := key.Signature()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[sig] = record{Sig: sig, Key: key, Val: val}
	s.dirty[key.Shard()] = struct{}{}
}

// Flush rewrites every dirty shard atomically (temp file + rename).
// Records are written in sorted signature order so a flushed shard's bytes
// are a pure function of its contents. The store lock is held across the
// rewrite: a Put racing a concurrent flush must not have its dirty mark
// cleared without its record reaching disk, and shard files are small
// enough (≤1/16th of the cache) that the stall is negligible next to the
// simulations the pool is running.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	shards := make([]string, 0, len(s.dirty))
	for sh := range s.dirty {
		shards = append(shards, sh)
	}
	sort.Strings(shards)
	byShard := map[string][]record{}
	for _, r := range s.entries {
		sh := r.Sig[:1]
		byShard[sh] = append(byShard[sh], r)
	}

	for _, sh := range shards {
		recs := byShard[sh]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Sig < recs[j].Sig })
		tmp, err := os.CreateTemp(s.dir, "cells-*.tmp")
		if err != nil {
			return fmt.Errorf("runner: flush: %w", err)
		}
		bw := bufio.NewWriter(tmp)
		enc := json.NewEncoder(bw)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				tmp.Close()
				os.Remove(tmp.Name())
				return fmt.Errorf("runner: flush: %w", err)
			}
		}
		if err := bw.Flush(); err == nil {
			err = tmp.Close()
		} else {
			tmp.Close()
		}
		if err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("runner: flush: %w", err)
		}
		if err := os.Rename(tmp.Name(), s.shardPath(sh)); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("runner: flush: %w", err)
		}
		delete(s.dirty, sh)
	}
	if len(shards) > 0 && s.bus != nil {
		s.bus.Publish(live.Event{Kind: live.StoreFlush, Shards: len(shards), Records: len(s.entries)})
	}
	return nil
}
