// Package runner is the parallel experiment engine: it decomposes a sweep
// into independent work-unit Cells keyed by a content signature, executes
// them on a bounded worker pool with per-cell panic isolation and bounded
// retry, and memoizes results in a persistent sharded-JSONL store so a
// repeated or interrupted sweep resumes instead of recomputing. Simulations
// in this repo are bit-deterministic and share no mutable state, which makes
// every experiment cell embarrassingly parallel and perfectly cacheable;
// the runner is the layer that exploits both. internal/bench and
// internal/recovery submit their cells through it; the pool reports
// progress and occupancy through internal/telemetry.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Key is the content signature of one work unit. Every field that can
// change the result must appear here: the workload identity and scale, the
// full machine-config signature, the full scheme signature (not just its
// name), the compile mode, and a code-version salt that callers bump when
// the simulator's semantics change (invalidating every previously cached
// result at once). Two cells with equal Signatures are interchangeable;
// the pool runs one and shares the result.
type Key struct {
	Kind     string `json:"kind"`     // cell family: "sim", "recovery", ...
	Workload string `json:"workload"` // workload or program identity
	Scale    string `json:"scale"`
	Compile  string `json:"compile,omitempty"` // compile mode ("" = original binary)
	Scheme   string `json:"scheme"`            // full scheme signature
	CfgSig   string `json:"cfg"`               // full machine-config signature
	Salt     string `json:"salt"`              // code-version salt
}

// Signature returns the cell's content hash: a hex SHA-256 over an
// unambiguous field encoding (lengths prefix every field, so no separator
// collision can alias two keys).
func (k Key) Signature() string {
	h := sha256.New()
	for _, f := range []string{k.Kind, k.Workload, k.Scale, k.Compile, k.Scheme, k.CfgSig, k.Salt} {
		fmt.Fprintf(h, "%d:%s;", len(f), f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Shard maps the signature to one of 16 store shards (its first hex digit),
// keeping individual JSONL files small enough that the atomic
// rewrite-and-rename flush stays cheap as a cache grows.
func (k Key) Shard() string { return k.Signature()[:1] }

// String renders the key for logs and store records.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s@%s/%s/%s", k.Kind, k.Workload, k.Scale, k.Compile, k.Scheme)
}
