package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"cwsp/internal/telemetry/live"
)

// Options configure a pool.
type Options struct {
	// Jobs is the worker count; <= 0 means GOMAXPROCS.
	Jobs int
	// Retries is how many times a failing cell is re-attempted before its
	// error is treated as hard (simulations are deterministic, so the
	// default is 0; IO-backed cells may want more).
	Retries int
	// Store, when set, memoizes results across invocations.
	Store *Store
	// Reuse serves cells from the store when their signature matches;
	// false recomputes (and overwrites) every cell, refreshing the cache.
	Reuse bool
	// FlushEvery flushes the store after this many executed cells
	// (default 32), so an interrupted sweep keeps its completed work.
	FlushEvery int
	// Log, when set, receives one line per executed cell.
	Log io.Writer
	// Bus, when set, receives live cell/occupancy events (the substrate
	// behind the -http observability endpoint). A nil bus costs one
	// predictable branch per cell transition.
	Bus *live.Bus
	// Progress, when set, is used instead of a fresh per-pool Progress —
	// the experiment service hands each campaign its own Progress so
	// per-campaign pace (done/total, ETA, hit ratio) stays readable over
	// HTTP while the campaign's pools come and go.
	Progress *Progress
}

// ErrCanceled marks a cell abandoned mid-retry because another cell's hard
// error already canceled the batch; test with errors.Is.
var ErrCanceled = errors.New("runner: canceled by an earlier failure")

// Cell is one independent work unit: a content signature plus the function
// that computes the result. R must round-trip through encoding/json when
// the pool runs with a persistent store.
type Cell[R any] struct {
	Key Key
	Run func() (R, error)
}

// Pool executes batches of cells on a bounded worker pool. A pool is safe
// for sequential reuse across batches (one experiment after another shares
// its workers' telemetry and store); Run itself fans out internally.
type Pool[R any] struct {
	opts Options
	jobs int
	prog *Progress
}

// NewPool builds a pool.
func NewPool[R any](opts Options) *Pool[R] {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 32
	}
	prog := opts.Progress
	if prog == nil {
		prog = newProgress(opts.Log)
	} else if opts.Log != nil {
		prog.setLog(opts.Log)
	}
	return &Pool[R]{opts: opts, jobs: jobs, prog: prog}
}

// Jobs returns the effective worker count.
func (p *Pool[R]) Jobs() int { return p.jobs }

// Progress returns the pool's cumulative telemetry.
func (p *Pool[R]) Progress() *Progress { return p.prog }

// Store returns the persistent store (nil when memoization is off).
func (p *Pool[R]) Store() *Store { return p.opts.Store }

// Close flushes the store. Call once after the last Run.
func (p *Pool[R]) Close() error {
	if p.opts.Store == nil {
		return nil
	}
	return p.opts.Store.Flush()
}

// Run executes every cell and returns the results in input order —
// parallelism never reorders output. Cells with equal signatures execute
// once and share the result. Cached cells are served from the store without
// executing. A panicking cell is isolated to an error; the first hard error
// (after Options.Retries re-attempts) cancels the remaining queue, and the
// error reported is the earliest failed cell in input order, so a parallel
// failure is reported deterministically.
func (p *Pool[R]) Run(cells []Cell[R]) ([]R, error) {
	start := time.Now()
	defer func() { p.prog.addWall(time.Since(start)) }()
	p.prog.addCells(len(cells))
	bus := p.opts.Bus
	bus.AddTotal(len(cells))
	bus.Publish(live.Event{Kind: live.PoolOccupancy})
	defer bus.Publish(live.Event{Kind: live.PoolOccupancy})

	out := make([]R, len(cells))
	errs := make([]error, len(cells))

	// Coalesce identical signatures: leaders execute, followers copy.
	leaderOf := make([]int, len(cells))
	var leaders []int
	bySig := map[string]int{}
	for i, c := range cells {
		sig := c.Key.Signature()
		if li, ok := bySig[sig]; ok {
			leaderOf[i] = li
			continue
		}
		bySig[sig] = i
		leaderOf[i] = i
		leaders = append(leaders, i)
	}

	// Serve leaders from the store.
	var work []int
	for _, i := range leaders {
		if p.opts.Store != nil && p.opts.Reuse {
			if raw, ok := p.opts.Store.Get(cells[i].Key.Signature()); ok {
				if err := json.Unmarshal(raw, &out[i]); err == nil {
					p.prog.cellHit(true)
					if bus != nil {
						bus.Publish(live.Event{Kind: live.CellCached, Worker: -1, Cell: cells[i].Key.String()})
					}
					continue
				}
				// An undecodable record (result type changed without a salt
				// bump) is recomputed and overwritten.
			}
		}
		work = append(work, i)
	}

	if len(work) > 0 {
		var (
			wg       sync.WaitGroup
			stop     = make(chan struct{})
			stopOnce sync.Once
			queue    = make(chan int, len(work))

			flushMu    sync.Mutex
			sinceFlush int
			flushErr   error
		)
		for _, i := range work {
			queue <- i
		}
		close(queue)

		jobs := p.jobs
		if jobs > len(work) {
			jobs = len(work)
		}
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range queue {
					select {
					case <-stop:
						return
					default:
					}
					var cellStart time.Time
					if bus != nil {
						cellStart = time.Now()
						bus.Publish(live.Event{Kind: live.CellStarted, Worker: worker, Cell: cells[i].Key.String()})
					}
					if err := p.runCell(&cells[i], &out[i], stop); err != nil {
						errs[i] = err
						if bus != nil {
							bus.Publish(live.Event{Kind: live.CellFinished, Worker: worker,
								Cell: cells[i].Key.String(), DurUS: time.Since(cellStart).Microseconds(), Err: err.Error()})
						}
						stopOnce.Do(func() { close(stop) })
						continue
					}
					if bus != nil {
						bus.Publish(live.Event{Kind: live.CellFinished, Worker: worker,
							Cell: cells[i].Key.String(), DurUS: time.Since(cellStart).Microseconds()})
					}
					if p.opts.Store != nil {
						raw, err := json.Marshal(out[i])
						if err != nil {
							errs[i] = fmt.Errorf("runner: encode %s: %w", cells[i].Key, err)
							stopOnce.Do(func() { close(stop) })
							continue
						}
						if err := p.opts.Store.Put(cells[i].Key, raw); err != nil {
							errs[i] = fmt.Errorf("runner: store %s: %w", cells[i].Key, err)
							stopOnce.Do(func() { close(stop) })
							continue
						}
						flushMu.Lock()
						sinceFlush++
						if sinceFlush >= p.opts.FlushEvery && flushErr == nil {
							flushErr = p.opts.Store.Flush()
							sinceFlush = 0
						}
						flushMu.Unlock()
					}
				}
			}(w)
		}
		wg.Wait()
		// Report the earliest non-canceled error in input order: a cell
		// abandoned mid-retry by the cancellation is a symptom, not the
		// cause, so it only surfaces when nothing else failed.
		var canceled error
		for _, i := range leaders {
			if errs[i] == nil {
				continue
			}
			if !errors.Is(errs[i], ErrCanceled) {
				return nil, errs[i]
			}
			if canceled == nil {
				canceled = errs[i]
			}
		}
		if canceled != nil {
			return nil, canceled
		}
		if flushErr != nil {
			return nil, flushErr
		}
		if p.opts.Store != nil {
			if err := p.opts.Store.Flush(); err != nil {
				return nil, err
			}
		}
	}

	// Propagate leader results to followers.
	for i := range cells {
		if leaderOf[i] != i {
			out[i] = out[leaderOf[i]]
			p.prog.cellHit(false)
			if bus != nil {
				bus.Publish(live.Event{Kind: live.CellCached, Worker: -1, Cell: cells[i].Key.String()})
			}
		}
	}
	return out, nil
}

// runCell executes one cell with panic isolation and bounded retry. A
// batch-wide cancellation (another cell's hard error) aborts the retry
// loop between attempts: once the batch is doomed, re-attempting a flaky
// cell only delays the error the caller is waiting for.
func (p *Pool[R]) runCell(c *Cell[R], out *R, stop <-chan struct{}) error {
	var err error
	for attempt := 0; attempt <= p.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-stop:
				return fmt.Errorf("runner: cell %s abandoned during retry (%v): %w", c.Key, err, ErrCanceled)
			default:
			}
			p.prog.addRetry()
		}
		err = p.attempt(c, out)
		if err == nil {
			return nil
		}
	}
	return err
}

func (p *Pool[R]) attempt(c *Cell[R], out *R) (err error) {
	p.prog.cellStart()
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			p.prog.addPanic()
			err = fmt.Errorf("runner: cell %s panicked: %v", c.Key, r)
		}
		p.prog.cellDone(time.Since(start), c.Key)
	}()
	r, err := c.Run()
	if err != nil {
		return fmt.Errorf("runner: cell %s: %w", c.Key, err)
	}
	*out = r
	return nil
}
