package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Put/Flush/Compact after Close must fail loudly with the typed ErrClosed
// (the pre-fix behavior raced silently), Get must miss, and a second Close
// must be a no-op.
func TestStoreClosedIsTyped(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := simKey(1)
	if err := s.Put(k, json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if err := s.Put(simKey(2), json.RawMessage(`2`)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: err=%v, want ErrClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: err=%v, want ErrClosed", err)
	}
	if _, err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close: err=%v, want ErrClosed", err)
	}
	if _, ok := s.Get(k.Signature()); ok {
		t.Fatal("Get after Close returned a hit")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The pre-Close Put survived Close's final flush.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != 1 {
		t.Fatalf("reloaded %d records, want 1", s2.Loaded())
	}
}

func TestStoreLockConflictAndStaleReclaim(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A second handle on the same directory conflicts while the first lives.
	if _, err := OpenStore(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("double open: err=%v, want ErrLocked", err)
	}
	var lerr *LockError
	if _, err := OpenStore(dir); !errors.As(err, &lerr) || lerr.OwnerPID != os.Getpid() {
		t.Fatalf("double open: err=%v, want *LockError owned by pid %d", err, os.Getpid())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A lock with an unreadable owner is stale: reclaimed, not fatal.
	lockPath := filepath.Join(dir, lockFileName)
	if err := os.WriteFile(lockPath, []byte("not-a-pid\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open over garbage lock: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A lock whose recorded owner is dead is reclaimed too. Pid 0 is never
	// a live peer, and very large pids are beyond the default pid_max.
	if err := os.WriteFile(lockPath, []byte(fmt.Sprintf("%d %s\n", 1<<30, time.Now().UTC().Format(time.RFC3339))), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open over dead-owner lock: %v", err)
	}
	defer s3.Close()
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := simKey(1)
	if err := s.Put(k, json.RawMessage(`{"cycles":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Grow garbage: a superseded duplicate line, a torn append, and a whole
	// shard file from an incompatible store generation.
	var shardFile string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "cells-v") {
			shardFile = filepath.Join(dir, e.Name())
		}
	}
	line, err := os.ReadFile(shardFile)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(shardFile, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(line)               // duplicate (superseded on load)
	f.WriteString(`{"sig":"to`) // torn append, no newline
	f.Close()
	orphan := filepath.Join(dir, "cells-v0-a.jsonl")
	if err := os.WriteFile(orphan, []byte("{}\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.LinesBefore != 5 { // 3 in the live shard + 2 in the orphan
		t.Fatalf("LinesBefore=%d, want 5", st.LinesBefore)
	}
	if st.Records != 1 || st.Dropped != 4 || st.OrphanFiles != 1 {
		t.Fatalf("compact stats %+v, want records=1 dropped=4 orphans=1", st)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan generation survived compaction: %v", err)
	}
	if n, err := countLines(shardFile); err != nil || n != 1 {
		t.Fatalf("compacted shard has %d lines (err=%v), want 1", n, err)
	}
	if raw, ok := s2.Get(k.Signature()); !ok || string(raw) != `{"cycles":1}` {
		t.Fatalf("record lost in compaction: %q ok=%v", raw, ok)
	}
}

func TestStoreEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Two-digit key indices keep every record exactly the same size, so the
	// byte budget below holds a whole number of records.
	val := json.RawMessage(`"` + strings.Repeat("x", 1000) + `"`)
	for i := 10; i < 13; i++ {
		if err := s.Put(simKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	budget := s.Bytes() // exactly three records' worth
	for i := 13; i < 20; i++ {
		if err := s.Put(simKey(i), val); err != nil {
			t.Fatal(err)
		}
	}

	s.SetMaxBytes(budget)
	if s.Len() != 3 || s.Evicted() != 7 {
		t.Fatalf("len=%d evicted=%d, want 3/7", s.Len(), s.Evicted())
	}
	if s.Bytes() > budget {
		t.Fatalf("bytes=%d over budget %d", s.Bytes(), budget)
	}
	// Most recently used survive; the oldest are gone.
	for i := 10; i < 17; i++ {
		if _, ok := s.Get(simKey(i).Signature()); ok {
			t.Fatalf("evicted key %d still readable", i)
		}
	}
	for i := 17; i < 20; i++ {
		if _, ok := s.Get(simKey(i).Signature()); !ok {
			t.Fatalf("recent key %d evicted", i)
		}
	}

	// Get refreshes recency: touch 17, add a new record — 18 (now coldest)
	// goes, 17 stays.
	if _, ok := s.Get(simKey(17).Signature()); !ok {
		t.Fatal("touch miss")
	}
	s.Get(simKey(19).Signature())
	if err := s.Put(simKey(20), val); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(simKey(18).Signature()); ok {
		t.Fatal("coldest key 18 survived the insert")
	}
	if _, ok := s.Get(simKey(17).Signature()); !ok {
		t.Fatal("recently touched key 17 was evicted")
	}

	// Eviction reaches disk: after a flush only the survivors remain.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Records != 3 || stats.MaxBytes != budget {
		t.Fatalf("stats %+v, want 3 records, max=%d", stats, budget)
	}
	survivors := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != survivors {
		t.Fatalf("disk holds %d records after eviction flush, want %d", s2.Loaded(), survivors)
	}
}

// A cell parked in the retry loop when another cell's hard error cancels
// the batch must abandon its remaining attempts, and the pool must report
// the root-cause error, not the cancellation symptom.
func TestPoolCancelDuringRetry(t *testing.T) {
	const retries = 1000
	var (
		flakyAttempts atomic.Int64
		hardFailed    = make(chan struct{})
		once          sync.Once
	)
	hardErr := errors.New("deterministic hard failure")
	cells := []Cell[int]{
		{Key: simKey(0), Run: func() (int, error) {
			// Wait until the flaky cell is inside its retry loop, then fail
			// hard (Retries applies batch-wide, so every attempt fails).
			<-timeAfterFirst(&flakyAttempts)
			once.Do(func() { close(hardFailed) })
			return 0, hardErr
		}},
		{Key: simKey(1), Run: func() (int, error) {
			n := flakyAttempts.Add(1)
			if n == 1 {
				<-hardFailed // park the first attempt until the batch is doomed
			} else {
				time.Sleep(time.Millisecond)
			}
			return 0, errors.New("flaky")
		}},
	}
	p := NewPool[int](Options{Jobs: 2, Retries: retries})
	_, err := p.Run(cells)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, hardErr) {
		t.Fatalf("pool error %v, want the root-cause hard error", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("pool reported the cancellation symptom: %v", err)
	}
	if n := flakyAttempts.Load(); n >= retries {
		t.Fatalf("flaky cell burned %d attempts; cancellation did not abandon the retry loop", n)
	}
}

// timeAfterFirst resolves once the counter has moved past zero (the flaky
// cell's first attempt has started), polling cheaply.
func timeAfterFirst(n *atomic.Int64) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for n.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		close(ch)
	}()
	return ch
}

// ETA must clamp to zero when cached cells complete faster than the tick
// window (Done racing past Cells) and must never overflow negative when a
// tiny rate extrapolates a huge remainder.
func TestProgressSnapshotETANeverNegative(t *testing.T) {
	p := NewProgress()
	p.mu.Lock()
	p.start = time.Now().Add(-time.Hour)
	p.cells = 1
	p.hits = 5 // a burst of cached cells overshot the submitted count
	p.mu.Unlock()
	if s := p.Snapshot(); s.ETAMS != 0 {
		t.Fatalf("overshoot ETA=%d, want 0", s.ETAMS)
	}

	p2 := NewProgress()
	p2.mu.Lock()
	p2.start = time.Now().Add(-time.Hour)
	p2.cells = int64(1) << 62 // huge remainder at ~1 cell/hour
	p2.exec = 1
	p2.mu.Unlock()
	s := p2.Snapshot()
	if s.ETAMS < 0 {
		t.Fatalf("overflow ETA=%d, want clamped non-negative", s.ETAMS)
	}
	if s.ETAMS != maxETAMS {
		t.Fatalf("huge-remainder ETA=%d, want clamp ceiling %d", s.ETAMS, maxETAMS)
	}

	// Fresh progress: denominator unknown.
	if s := NewProgress().Snapshot(); s.ETAMS != -1 {
		t.Fatalf("unknown ETA=%d, want -1", s.ETAMS)
	}
}

// Restart re-stamps the pace clock: a service campaign's Progress exists
// from submission, but elapsed/rate/ETA must measure execution, not time
// spent waiting in the admission queue.
func TestProgressRestartExcludesQueueWait(t *testing.T) {
	p := NewProgress()
	p.mu.Lock()
	p.start = time.Now().Add(-time.Hour) // an hour stuck in the queue
	p.mu.Unlock()
	if s := p.Snapshot(); s.ElapsedMS < time.Hour.Milliseconds() {
		t.Fatalf("queued elapsed=%dms, want >= 1h", s.ElapsedMS)
	}
	p.Restart()
	if s := p.Snapshot(); s.ElapsedMS >= time.Minute.Milliseconds() {
		t.Fatalf("post-restart elapsed=%dms still includes queue wait", s.ElapsedMS)
	}
}

// Concurrent opens over a dead owner's lock: exactly one racer may
// acquire. The old existence-based reclaim had a TOCTOU where one racer's
// unconditional remove could delete another's freshly created lock and
// leave two live owners; flock(2) has no reclaim step to race.
func TestStoreLockConcurrentReclaim(t *testing.T) {
	dir := t.TempDir()
	lockPath := filepath.Join(dir, lockFileName)
	// A dead owner: pid beyond the default pid_max.
	if err := os.WriteFile(lockPath, []byte(fmt.Sprintf("%d\n", 1<<30)), 0o644); err != nil {
		t.Fatal(err)
	}
	const racers = 8
	var (
		won    atomic.Int32
		wg     sync.WaitGroup
		stores [racers]*Store
	)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := OpenStore(dir)
			switch {
			case err == nil:
				stores[i] = s
				won.Add(1)
			case !errors.Is(err, ErrLocked):
				t.Errorf("racer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if won.Load() != 1 {
		t.Fatalf("%d racers acquired the lock, want exactly 1", won.Load())
	}
	for _, s := range stores {
		if s != nil {
			s.Close()
		}
	}
}

// OpenStoreWait outlives a lock holder that releases within the wait
// budget — the restart-after-SIGKILL path, where a successor daemon races
// the kernel reaping its predecessor.
func TestOpenStoreWait(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Zero wait fails fast while the owner lives.
	if _, err := OpenStoreWait(dir, 0); !errors.Is(err, ErrLocked) {
		t.Fatalf("zero-wait open under live lock: err=%v, want ErrLocked", err)
	}

	// Release mid-wait: the waiter acquires instead of failing.
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.Close()
	}()
	s2, err := OpenStoreWait(dir, 5*time.Second)
	if err != nil {
		t.Fatalf("waited open: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
