package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := simKey(1)
	if err := s.Put(k, json.RawMessage(`{"cycles":123}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the record survives and no temp files remain.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != 1 {
		t.Fatalf("loaded %d records, want 1", s2.Loaded())
	}
	raw, ok := s2.Get(k.Signature())
	if !ok || string(raw) != `{"cycles":123}` {
		t.Fatalf("get: %q ok=%v", raw, ok)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() == lockFileName {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
		if !strings.HasPrefix(e.Name(), "cells-v") || !strings.HasSuffix(e.Name(), ".jsonl") {
			t.Fatalf("unexpected store file %s", e.Name())
		}
	}
}

func TestStoreSharding(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Enough keys to hit several shards.
	for i := 0; i < 64; i++ {
		s.Put(simKey(i), json.RawMessage(`1`))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var shards int
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "cells-v") {
			shards++
		}
	}
	if shards < 2 {
		t.Fatalf("expected multiple shard files, got %d", shards)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 64 {
		t.Fatalf("reloaded %d records, want 64", s2.Len())
	}
}

func TestStoreSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.Put(simKey(0), json.RawMessage(`7`))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write at the end of a shard.
	var shardFile string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "cells-v") {
			shardFile = filepath.Join(dir, e.Name())
		}
	}
	f, err := os.OpenFile(shardFile, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"sig":"tr`)
	f.Close()

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Loaded() != 1 {
		t.Fatalf("loaded %d, want 1 (corrupt tail skipped)", s2.Loaded())
	}
}

func TestPoolServesFromStoreAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	mk := func() []Cell[int] {
		var cells []Cell[int]
		for i := 0; i < 8; i++ {
			i := i
			cells = append(cells, Cell[int]{Key: simKey(i), Run: func() (int, error) {
				runs.Add(1)
				return i * 10, nil
			}})
		}
		return cells
	}

	p1 := NewPool[int](Options{Jobs: 4, Store: store, Reuse: true})
	out1, err := p1.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 8 {
		t.Fatalf("cold run executed %d, want 8", runs.Load())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh store handle, fresh pool: everything is a cache hit.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPool[int](Options{Jobs: 4, Store: store2, Reuse: true})
	out2, err := p2.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 8 {
		t.Fatalf("warm run executed %d more cells", runs.Load()-8)
	}
	if p2.Progress().Hits() != 8 || p2.Progress().Executed() != 0 {
		t.Fatalf("warm run hits=%d executed=%d", p2.Progress().Hits(), p2.Progress().Executed())
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("out mismatch at %d: %d vs %d", i, out1[i], out2[i])
		}
	}

	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reuse=false refreshes: every cell recomputes despite the warm store.
	store3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	p3 := NewPool[int](Options{Jobs: 4, Store: store3, Reuse: false})
	if _, err := p3.Run(mk()); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 16 {
		t.Fatalf("refresh run executed %d total, want 16", runs.Load())
	}
}

func TestPoolFlushEveryPersistsPartialSweeps(t *testing.T) {
	dir := t.TempDir()
	store, _ := OpenStore(dir)
	p := NewPool[int](Options{Jobs: 1, Store: store, Reuse: true, FlushEvery: 1})
	// Cell 3 fails; cells 0..2 must already be on disk.
	var cells []Cell[int]
	for i := 0; i < 3; i++ {
		i := i
		cells = append(cells, Cell[int]{Key: simKey(i), Run: func() (int, error) { return i, nil }})
	}
	cells = append(cells, Cell[int]{Key: simKey(3), Run: func() (int, error) {
		panic("power cut")
	}})
	if _, err := p.Run(cells); err == nil {
		t.Fatal("want error")
	}
	// Drop the handle without Close: the on-disk lock left behind belongs to
	// this (live) process, so reopening must still conflict...
	if _, err := OpenStore(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("reopen with live lock: err=%v, want ErrLocked", err)
	}
	// ...until the owner releases it.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Loaded() != 3 {
		t.Fatalf("resumable store holds %d records, want 3", resumed.Loaded())
	}
}
