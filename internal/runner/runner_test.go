package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func simKey(i int) Key {
	return Key{Kind: "test", Workload: fmt.Sprintf("w%d", i), Scale: "smoke",
		Scheme: "sch", CfgSig: "cfg", Salt: "v1"}
}

func TestKeySignatureDistinguishesFields(t *testing.T) {
	base := Key{Kind: "sim", Workload: "a", Scale: "quick", Compile: "pruned",
		Scheme: "s", CfgSig: "c", Salt: "v1"}
	seen := map[string]string{base.Signature(): "base"}
	variants := map[string]Key{
		"kind":     {Kind: "rec", Workload: "a", Scale: "quick", Compile: "pruned", Scheme: "s", CfgSig: "c", Salt: "v1"},
		"workload": {Kind: "sim", Workload: "b", Scale: "quick", Compile: "pruned", Scheme: "s", CfgSig: "c", Salt: "v1"},
		"scale":    {Kind: "sim", Workload: "a", Scale: "full", Compile: "pruned", Scheme: "s", CfgSig: "c", Salt: "v1"},
		"compile":  {Kind: "sim", Workload: "a", Scale: "quick", Compile: "", Scheme: "s", CfgSig: "c", Salt: "v1"},
		"scheme":   {Kind: "sim", Workload: "a", Scale: "quick", Compile: "pruned", Scheme: "t", CfgSig: "c", Salt: "v1"},
		"cfg":      {Kind: "sim", Workload: "a", Scale: "quick", Compile: "pruned", Scheme: "s", CfgSig: "d", Salt: "v1"},
		"salt":     {Kind: "sim", Workload: "a", Scale: "quick", Compile: "pruned", Scheme: "s", CfgSig: "c", Salt: "v2"},
	}
	for name, k := range variants {
		sig := k.Signature()
		if prev, dup := seen[sig]; dup {
			t.Errorf("changing %s collided with %s", name, prev)
		}
		seen[sig] = name
	}
	// Field contents must not alias across field boundaries.
	a := Key{Workload: "ab", Scale: "c"}
	b := Key{Workload: "a", Scale: "bc"}
	if a.Signature() == b.Signature() {
		t.Error("field boundary aliasing")
	}
	if base.Signature() != base.Signature() {
		t.Error("signature not deterministic")
	}
}

func TestPoolPreservesInputOrder(t *testing.T) {
	const n = 100
	cells := make([]Cell[int], n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell[int]{Key: simKey(i), Run: func() (int, error) { return i * i, nil }}
	}
	p := NewPool[int](Options{Jobs: 8})
	out, err := p.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if got := p.Progress().Executed(); got != n {
		t.Fatalf("executed %d cells, want %d", got, n)
	}
}

func TestPoolCoalescesEqualSignatures(t *testing.T) {
	var runs atomic.Int64
	shared := Cell[int]{Key: simKey(7), Run: func() (int, error) {
		runs.Add(1)
		return 42, nil
	}}
	cells := []Cell[int]{shared, shared, shared, shared}
	p := NewPool[int](Options{Jobs: 4})
	out, err := p.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("shared cell ran %d times, want 1", got)
	}
	for i, v := range out {
		if v != 42 {
			t.Fatalf("out[%d] = %d, want 42", i, v)
		}
	}
}

func TestPoolIsolatesPanics(t *testing.T) {
	cells := []Cell[int]{
		{Key: simKey(0), Run: func() (int, error) { return 1, nil }},
		{Key: simKey(1), Run: func() (int, error) { panic("boom") }},
	}
	p := NewPool[int](Options{Jobs: 2})
	_, err := p.Run(cells)
	if err == nil || !strings.Contains(err.Error(), "panicked: boom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestPoolBoundedRetry(t *testing.T) {
	var attempts atomic.Int64
	cells := []Cell[int]{{Key: simKey(0), Run: func() (int, error) {
		if attempts.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 9, nil
	}}}
	p := NewPool[int](Options{Jobs: 1, Retries: 2})
	out, err := p.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || attempts.Load() != 3 {
		t.Fatalf("out=%d attempts=%d, want 9 after 3 attempts", out[0], attempts.Load())
	}

	// Exhausted retries surface the error.
	attempts.Store(0)
	fail := []Cell[int]{{Key: simKey(1), Run: func() (int, error) {
		attempts.Add(1)
		return 0, errors.New("hard")
	}}}
	if _, err := NewPool[int](Options{Jobs: 1, Retries: 2}).Run(fail); err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempted %d times, want 3", attempts.Load())
	}
}

func TestPoolCancelsOnFirstHardError(t *testing.T) {
	// Single worker: cell 1 fails, so cells 2..N must never start.
	var started atomic.Int64
	cells := []Cell[int]{
		{Key: simKey(0), Run: func() (int, error) { return 0, errors.New("hard") }},
	}
	for i := 1; i < 50; i++ {
		i := i
		cells = append(cells, Cell[int]{Key: simKey(i), Run: func() (int, error) {
			started.Add(1)
			return i, nil
		}})
	}
	p := NewPool[int](Options{Jobs: 1})
	if _, err := p.Run(cells); err == nil {
		t.Fatal("want error")
	}
	if got := started.Load(); got != 0 {
		t.Fatalf("%d cells started after the hard error", got)
	}
}

func TestPoolReportsEarliestError(t *testing.T) {
	// Both cells fail on a 2-wide pool; the reported error must be the
	// earliest in input order regardless of completion order.
	var gate sync.WaitGroup
	gate.Add(1)
	cells := []Cell[int]{
		{Key: simKey(0), Run: func() (int, error) {
			gate.Wait() // finish after cell 1
			return 0, errors.New("first")
		}},
		{Key: simKey(1), Run: func() (int, error) {
			gate.Done()
			return 0, errors.New("second")
		}},
	}
	_, err := NewPool[int](Options{Jobs: 2}).Run(cells)
	if err == nil || !strings.Contains(err.Error(), "first") {
		t.Fatalf("want earliest cell's error, got %v", err)
	}
}

func TestPoolDefaultJobs(t *testing.T) {
	if got := NewPool[int](Options{}).Jobs(); got < 1 {
		t.Fatalf("default jobs %d", got)
	}
	if got := NewPool[int](Options{Jobs: 3}).Jobs(); got != 3 {
		t.Fatalf("jobs %d, want 3", got)
	}
}

func TestProgressTelemetry(t *testing.T) {
	p := NewPool[int](Options{Jobs: 4})
	var cells []Cell[int]
	for i := 0; i < 10; i++ {
		i := i
		cells = append(cells, Cell[int]{Key: simKey(i), Run: func() (int, error) { return i, nil }})
	}
	if _, err := p.Run(cells); err != nil {
		t.Fatal(err)
	}
	prog := p.Progress()
	if prog.Cells() != 10 || prog.Executed() != 10 || prog.Hits() != 0 {
		t.Fatalf("cells=%d executed=%d hits=%d", prog.Cells(), prog.Executed(), prog.Hits())
	}
	if prog.Latency().Count() != 10 {
		t.Fatalf("latency samples %d, want 10", prog.Latency().Count())
	}
	if prog.Occupancy().Len() == 0 {
		t.Fatal("no occupancy samples")
	}
	info := prog.Info(4)
	if info.Jobs != 4 || info.Cells != 10 || info.Executed != 10 {
		t.Fatalf("info %+v", info)
	}
	if info.CellLatencyUS == nil || info.CellLatencyUS.Count != 10 {
		t.Fatalf("latency summary %+v", info.CellLatencyUS)
	}
}
