package nvmtech

import "testing"

func TestCycleConversions(t *testing.T) {
	// PMEM: 175ns read at 2GHz = 350 cycles; 90ns write = 180 cycles.
	if got := PMEM.ReadLatCycles(); got != 350 {
		t.Errorf("PMEM read = %d cycles, want 350", got)
	}
	if got := PMEM.WriteLatCycles(); got != 180 {
		t.Errorf("PMEM write = %d cycles, want 180", got)
	}
	// 2.3 GB/s at 2 GHz = 1.15 B/cycle.
	if got := PMEM.WriteBytesPerCycle(); got < 1.14 || got > 1.16 {
		t.Errorf("PMEM write BPC = %v, want ~1.15", got)
	}
}

func TestExtraLinkLatency(t *testing.T) {
	d := Tech{ReadLatNS: 100, ExtraLinkNS: 70}
	if got := d.ReadLatCycles(); got != 340 {
		t.Errorf("link latency not added: %d, want 340", got)
	}
}

func TestOrderings(t *testing.T) {
	// The technology ladder the paper leans on: ReRAM faster than STT-MRAM
	// faster than PMEM (reads and writes).
	if !(ReRAM.ReadLatNS < STTMRAM.ReadLatNS && STTMRAM.ReadLatNS < PMEM.ReadLatNS) {
		t.Error("read latency ordering violated")
	}
	if !(ReRAM.WriteBWGBs > STTMRAM.WriteBWGBs && STTMRAM.WriteBWGBs > PMEM.WriteBWGBs) {
		t.Error("write bandwidth ordering violated")
	}
}

func TestTableIDevices(t *testing.T) {
	if len(CXLDevices) != 4 {
		t.Fatalf("Table I has 4 devices, got %d", len(CXLDevices))
	}
	// Table I: CXL-B slower reads than CXL-A; CXL-D is the PMEM device
	// (lowest write bandwidth).
	if !(CXLA.ReadLatNS < CXLB.ReadLatNS) {
		t.Error("CXL-A should have lower read latency than CXL-B")
	}
	for _, d := range CXLDevices {
		if d.Name != "CXL-D" && d.WriteBWGBs <= CXLD.WriteBWGBs {
			t.Errorf("%s write BW should exceed CXL-D's", d.Name)
		}
		if !d.IsCXL {
			t.Errorf("%s not marked CXL", d.Name)
		}
	}
}

func TestAllRegistry(t *testing.T) {
	for _, name := range []string{"PMEM", "STTRAM", "ReRAM", "DRAM", "CXL-A", "CXL-B", "CXL-C", "CXL-D"} {
		tech, ok := All[name]
		if !ok {
			t.Errorf("missing preset %q", name)
			continue
		}
		if tech.ReadLatCycles() <= 0 || tech.WriteBytesPerCycle() <= 0 {
			t.Errorf("%s has degenerate parameters", name)
		}
	}
}
