// Package nvmtech holds the NVM and CXL device parameter presets the
// paper's evaluation sweeps over: Intel-Optane-class PMEM (the default),
// STT-MRAM, ReRAM (Section IX-M), and the four CXL devices of Table I
// (Section IX-C). Latencies are converted to core cycles at 2 GHz
// (1 cycle = 0.5 ns).
package nvmtech

// Tech describes one memory technology / device.
type Tech struct {
	Name string
	// ReadLatNS / WriteLatNS are media access latencies in nanoseconds.
	ReadLatNS  float64
	WriteLatNS float64
	// ReadBWGBs / WriteBWGBs are sustainable bandwidths in GB/s.
	ReadBWGBs  float64
	WriteBWGBs float64
	// ExtraLinkNS is interconnect latency added on top of media latency
	// (the 70 ns CXL link for CXL-D, already folded into the NVDIMM
	// figures measured end-to-end in Table I).
	ExtraLinkNS float64
	// IsCXL marks the Table I devices.
	IsCXL bool
}

// GHz is the modeled core clock.
const GHz = 2.0

// ReadLatCycles returns the total read latency in core cycles.
func (t Tech) ReadLatCycles() int64 { return int64((t.ReadLatNS + t.ExtraLinkNS) * GHz) }

// WriteLatCycles returns the total write latency in core cycles.
func (t Tech) WriteLatCycles() int64 { return int64((t.WriteLatNS + t.ExtraLinkNS) * GHz) }

// WriteBytesPerCycle converts write bandwidth to bytes per core cycle.
func (t Tech) WriteBytesPerCycle() float64 { return t.WriteBWGBs / GHz }

// ReadBytesPerCycle converts read bandwidth to bytes per core cycle.
func (t Tech) ReadBytesPerCycle() float64 { return t.ReadBWGBs / GHz }

// Presets, matching Section IX (PMEM default: 175 ns read / 90 ns write),
// Section IX-M (STT-MRAM, ReRAM), and Table I (CXL-A..D).
var (
	PMEM = Tech{Name: "PMEM", ReadLatNS: 175, WriteLatNS: 90,
		ReadBWGBs: 6.6, WriteBWGBs: 2.3}
	STTMRAM = Tech{Name: "STTRAM", ReadLatNS: 80, WriteLatNS: 55,
		ReadBWGBs: 12, WriteBWGBs: 8}
	ReRAM = Tech{Name: "ReRAM", ReadLatNS: 50, WriteLatNS: 40,
		ReadBWGBs: 16, WriteBWGBs: 12}
	DRAM = Tech{Name: "DRAM", ReadLatNS: 50, WriteLatNS: 50,
		ReadBWGBs: 19.2, WriteBWGBs: 19.2}

	CXLA = Tech{Name: "CXL-A", ReadLatNS: 158, WriteLatNS: 120,
		ReadBWGBs: 38.4, WriteBWGBs: 38.4, IsCXL: true}
	CXLB = Tech{Name: "CXL-B", ReadLatNS: 223, WriteLatNS: 139,
		ReadBWGBs: 19.2, WriteBWGBs: 19.2, IsCXL: true}
	CXLC = Tech{Name: "CXL-C", ReadLatNS: 348, WriteLatNS: 241,
		ReadBWGBs: 25.6, WriteBWGBs: 25.6, IsCXL: true}
	CXLD = Tech{Name: "CXL-D", ReadLatNS: 245, WriteLatNS: 160,
		ReadBWGBs: 6.6, WriteBWGBs: 2.3, IsCXL: true}
)

// All lists every preset by name.
var All = map[string]Tech{
	"PMEM": PMEM, "STTRAM": STTMRAM, "ReRAM": ReRAM, "DRAM": DRAM,
	"CXL-A": CXLA, "CXL-B": CXLB, "CXL-C": CXLC, "CXL-D": CXLD,
}

// CXLDevices lists the Table I devices in order.
var CXLDevices = []Tech{CXLA, CXLB, CXLC, CXLD}
