// Command cwspbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	cwspbench -list                # show every experiment
//	cwspbench -exp fig13           # reproduce Figure 13 (quick scale)
//	cwspbench -exp fig14 -scale full
//	cwspbench -exp all -scale quick  # the whole evaluation section
//
// Experiments decompose into independent simulation cells that run on a
// worker pool (-jobs, default GOMAXPROCS) and memoize in a persistent
// store (-cache-dir): a repeated sweep is served from the cache, and an
// interrupted one resumes where it stopped. Parallelism and caching never
// change report bytes.
//
//	cwspbench -exp all -jobs 8 -cache-dir .cwsp-cache
//	cwspbench -exp fig21 -cache-dir .cwsp-cache -resume=false  # refresh
//
// A running sweep is observable over HTTP (-http): Prometheus /metrics,
// a JSON /progress snapshot, an SSE /events stream, and /debug/pprof.
// The bench trajectory is tracked with -bench-out (emit a versioned
// BENCH_<name>.json record) and -bench-check (gate a record against a
// committed baseline; see `make bench-check`):
//
//	cwspbench -exp all -jobs 8 -http :8080
//	cwspbench -exp fig06 -bench-out BENCH_smoke.json
//	cwspbench -bench-in BENCH_smoke.json -bench-check baselines/BENCH_smoke.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cwsp/internal/bench"
	"cwsp/internal/telemetry"
	"cwsp/internal/telemetry/benchfmt"
	"cwsp/internal/telemetry/live"
	"cwsp/internal/workloads"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id(s), comma separated, or \"all\" (fig01..fig27, hwcost, compiler, abl-*)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.String("scale", "quick", "workload scale: smoke, quick, full")
		perApp   = flag.Bool("per-app", false, "per-application rows where the paper aggregates")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
		metOut   = flag.String("metrics-out", "", "also collect every report into a versioned manifest JSON file")
		jobs     = flag.Int("jobs", 0, "parallel simulation cells (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache-dir", "", "persistent per-cell result cache; repeated sweeps become cache hits")
		resume   = flag.Bool("resume", true, "serve cells from an existing cache (false recomputes and refreshes it)")
		httpAddr = flag.String("http", "", "serve the live observability endpoint (/metrics, /progress, /events, /debug/pprof) on this address")
		benchOut    = flag.String("bench-out", "", "emit a benchfmt trajectory record (BENCH_<name>.json) for this sweep")
		benchKernel = flag.Bool("bench-kernel", false, "measure the simulation-kernel comparison (batched vs threaded per cell) instead of running experiments")
		kernelReps  = flag.Int("bench-kernel-reps", 3, "alternating measurement batches per kernel per cell")
		benchIn  = flag.String("bench-in", "", "with -bench-check: compare this existing record instead of running experiments")
		checkVs  = flag.String("bench-check", "", "gate the sweep's record against this baseline record; exit 1 on regression")
		strict   = flag.Bool("bench-strict", false, "enforce wall-clock gates even across differing host fingerprints")
		tol      = flag.Float64("bench-tol", 0.15, "fractional regression tolerance for bench-check")
		verbose  = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	// Compare-only mode: gate an existing record without simulating.
	if *benchIn != "" {
		if *checkVs == "" {
			fatal(fmt.Errorf("-bench-in needs -bench-check <baseline>"))
		}
		cur, err := benchfmt.ReadFile(*benchIn)
		if err != nil {
			fatal(err)
		}
		os.Exit(checkRecord(cur, *checkVs, *tol, *strict))
	}

	// Kernel-comparison mode: in-process measurement of every kernel
	// matrix cell, emitted as a BENCH_kernel.json trajectory record.
	if *benchKernel {
		prof, err := bench.RunKernelBench(*kernelReps, os.Stderr)
		if err != nil {
			fatal(err)
		}
		name := "kernel"
		if *benchOut != "" {
			name = benchfmt.NameFromPath(*benchOut)
		} else if *checkVs != "" {
			name = benchfmt.NameFromPath(*checkVs)
		}
		rec := benchfmt.New(name, "cwspbench")
		rec.Salt = bench.ResultsSalt
		rec.Kernel = prof
		if *benchOut != "" {
			if err := rec.WriteFile(*benchOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cwspbench: wrote trajectory record %s\n", *benchOut)
		}
		if *checkVs != "" {
			os.Exit(checkRecord(rec, *checkVs, *tol, *strict))
		}
		return
	}

	opt := bench.Options{
		Scale:    scaleOf(*scale),
		PerApp:   *perApp,
		Jobs:     *jobs,
		CacheDir: *cacheDir,
		NoResume: !*resume,
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	var srv *live.Server
	liveAddr := ""
	if *httpAddr != "" {
		srv = live.NewServer(live.NewBus())
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		liveAddr = addr
		opt.Bus = srv.Bus()
		fmt.Fprintf(os.Stderr, "cwspbench: live endpoint on http://%s (/metrics /progress /events /debug/pprof)\n", addr)
		defer srv.Close()
	}
	h := bench.NewHarness(opt)
	if srv != nil {
		srv.RegisterHistograms(h.LiveHistograms)
	}

	var ids []string
	switch {
	case *all || *expID == "all":
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	case *expID != "":
		ids = strings.Split(*expID, ",")
	default:
		fmt.Fprintln(os.Stderr, "cwspbench: need -exp <id>, -exp all, or -all (see -list)")
		os.Exit(2)
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	var reports []telemetry.BenchReport
	for _, id := range ids {
		e, err := bench.ByID(id)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rep, err := h.RunExperiment(e)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Print(rep.Table())
			fmt.Printf("(%s in %v at %s scale)\n\n", id, time.Since(start).Round(time.Millisecond), opt.Scale.Name)
		}
		if *metOut != "" {
			reports = append(reports, rep.TelemetryReport())
		}
	}

	if err := h.Close(); err != nil {
		fatal(err)
	}
	if ri := h.RunnerSummary(); ri != nil && !*csv {
		fmt.Printf("runner: %d jobs, %d cells (%d cache hits, %d shared, %d executed) in %dms pool time\n",
			ri.Jobs, ri.Cells, ri.CacheHits, ri.Shared, ri.Executed, ri.WallMS)
	}

	if *metOut != "" {
		man := telemetry.NewManifest("cwspbench")
		man.Scale = opt.Scale.Name
		man.Salt = bench.ResultsSalt
		man.LiveAddr = liveAddr
		man.Reports = reports
		man.Runner = h.RunnerSummary()
		fh, err := os.Create(*metOut)
		if err != nil {
			fatal(err)
		}
		if err := man.Write(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}

	if *benchOut != "" || *checkVs != "" {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		name := "smoke"
		if *benchOut != "" {
			name = benchfmt.NameFromPath(*benchOut)
		} else if *checkVs != "" {
			name = benchfmt.NameFromPath(*checkVs)
		}
		rec := benchfmt.New(name, "cwspbench")
		rec.Salt = bench.ResultsSalt
		rec.Scale = opt.Scale.Name
		rec.Experiments = ids
		rec.FromRunner(h.RunnerSummary())
		rec.Allocs = memAfter.Mallocs - memBefore.Mallocs
		rec.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
		if *benchOut != "" {
			if err := rec.WriteFile(*benchOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cwspbench: wrote trajectory record %s\n", *benchOut)
		}
		if *checkVs != "" {
			os.Exit(checkRecord(rec, *checkVs, *tol, *strict))
		}
	}
}

// checkRecord gates cur against the baseline at path; returns the exit
// code (0 pass, 1 regression).
func checkRecord(cur *benchfmt.Record, baselinePath string, tol float64, strict bool) int {
	base, err := benchfmt.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	cmp, err := benchfmt.Compare(base, cur, benchfmt.CompareOptions{Tol: tol, Strict: strict})
	if err != nil {
		fatal(err)
	}
	cmp.Write(os.Stdout)
	if cmp.Failed() {
		fmt.Fprintln(os.Stderr, "cwspbench: bench-check FAILED: enforced metric regressed beyond tolerance")
		return 1
	}
	fmt.Println("bench-check: ok")
	return 0
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "smoke":
		return workloads.Smoke
	default:
		return workloads.Quick
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwspbench:", err)
	os.Exit(1)
}
