// Command cwspbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	cwspbench -list                # show every experiment
//	cwspbench -exp fig13           # reproduce Figure 13 (quick scale)
//	cwspbench -exp fig14 -scale full
//	cwspbench -exp all -scale quick  # the whole evaluation section
//
// Experiments decompose into independent simulation cells that run on a
// worker pool (-jobs, default GOMAXPROCS) and memoize in a persistent
// store (-cache-dir): a repeated sweep is served from the cache, and an
// interrupted one resumes where it stopped. Parallelism and caching never
// change report bytes.
//
//	cwspbench -exp all -jobs 8 -cache-dir .cwsp-cache
//	cwspbench -exp fig21 -cache-dir .cwsp-cache -resume=false  # refresh
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cwsp/internal/bench"
	"cwsp/internal/telemetry"
	"cwsp/internal/workloads"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id(s), comma separated, or \"all\" (fig01..fig27, hwcost, compiler, abl-*)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.String("scale", "quick", "workload scale: smoke, quick, full")
		perApp   = flag.Bool("per-app", false, "per-application rows where the paper aggregates")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
		metOut   = flag.String("metrics-out", "", "also collect every report into a versioned manifest JSON file")
		jobs     = flag.Int("jobs", 0, "parallel simulation cells (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache-dir", "", "persistent per-cell result cache; repeated sweeps become cache hits")
		resume   = flag.Bool("resume", true, "serve cells from an existing cache (false recomputes and refreshes it)")
		verbose  = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := bench.Options{
		Scale:    scaleOf(*scale),
		PerApp:   *perApp,
		Jobs:     *jobs,
		CacheDir: *cacheDir,
		NoResume: !*resume,
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	h := bench.NewHarness(opt)

	var ids []string
	switch {
	case *all || *expID == "all":
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	case *expID != "":
		ids = strings.Split(*expID, ",")
	default:
		fmt.Fprintln(os.Stderr, "cwspbench: need -exp <id>, -exp all, or -all (see -list)")
		os.Exit(2)
	}

	var reports []telemetry.BenchReport
	for _, id := range ids {
		e, err := bench.ByID(id)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rep, err := h.RunExperiment(e)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Print(rep.Table())
			fmt.Printf("(%s in %v at %s scale)\n\n", id, time.Since(start).Round(time.Millisecond), opt.Scale.Name)
		}
		if *metOut != "" {
			reports = append(reports, rep.TelemetryReport())
		}
	}

	if err := h.Close(); err != nil {
		fatal(err)
	}
	if ri := h.RunnerSummary(); ri != nil && !*csv {
		fmt.Printf("runner: %d jobs, %d cells (%d cache hits, %d shared, %d executed) in %dms pool time\n",
			ri.Jobs, ri.Cells, ri.CacheHits, ri.Shared, ri.Executed, ri.WallMS)
	}

	if *metOut != "" {
		man := telemetry.NewManifest("cwspbench")
		man.Scale = opt.Scale.Name
		man.Reports = reports
		man.Runner = h.RunnerSummary()
		fh, err := os.Create(*metOut)
		if err != nil {
			fatal(err)
		}
		if err := man.Write(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "smoke":
		return workloads.Smoke
	default:
		return workloads.Quick
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwspbench:", err)
	os.Exit(1)
}
