// Command cwsplitmus runs persistency-model litmus campaigns: seeded tiny
// programs of stores, fences, atomics, and call boundaries across cores
// and memory controllers, each crashed under the real simulated persist
// path and judged against the allowed post-crash outcome set derived
// statically from the scheme's ordering axioms. It checks the memory
// system the way cwsplint checks the compiler: an observed outcome outside
// the derived set is a CWSP1xx diagnostic, shrunk to a one-flag
// reproducer.
//
// Usage:
//
//	cwsplitmus -seed 1 -n 50                        # 50 shapes x all schemes x both kernels
//	cwsplitmus -n 20 -schemes cwsp,capri -kernels fast
//	cwsplitmus -seed 1 -n 10 -unsealed              # negative control: faults become violations
//	cwsplitmus -replay 't0=S0.1,F,A2.3;t1=S1.2;sch=cwsp;kern=fast;crashes=350'
//
// A violating campaign prints the shrunk reproducer, e.g.:
//
//	cwsplitmus -replay 't0=S0.1,A2.3;sch=cwsp;kern=fast;crashes=175'
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cwsp/internal/litmus"
	"cwsp/internal/runner"
	"cwsp/internal/telemetry"
	"cwsp/internal/telemetry/live"
)

func main() {
	var (
		replay   = flag.String("replay", "", "run one litmus spec instead of a campaign")
		seed     = flag.Int64("seed", 1, "campaign master seed")
		n        = flag.Int("n", 50, "generated litmus shapes (each runs under every scheme x kernel cell)")
		schemes  = flag.String("schemes", strings.Join(litmus.AllSchemes, ","), "comma-separated schemes")
		kernels  = flag.String("kernels", strings.Join(litmus.AllKernels, ","), "comma-separated kernels (fast, ref)")
		cores    = flag.Int("cores", 2, "threads per litmus (1-3)")
		events   = flag.Int("events", 5, "max events per thread")
		points   = flag.Int("points", 2, "max fault points per litmus")
		jobs     = flag.Int("jobs", 0, "worker pool width (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "write the JSON campaign report here")
		metrics  = flag.String("metrics-out", "", "write a telemetry manifest here")
		cacheDir = flag.String("cache-dir", "", "persistent cell-result cache directory")
		unsealed = flag.Bool("unsealed", false, "disable seal validation (negative control; faults surface as violations)")
		noShrink = flag.Bool("no-shrink", false, "skip shrinking violating cells")
		httpAddr = flag.String("http", "", "serve the live observability endpoint (/metrics, /progress, /events, /debug/pprof) on this address")
		progress = flag.Bool("progress", true, "live one-line progress/ETA ticker on stderr")
	)
	flag.Parse()

	if *replay != "" {
		replayOne(*replay, *unsealed)
		return
	}

	opts := litmus.CampaignOptions{
		Seed:     *seed,
		Tests:    *n,
		Gen:      litmus.GenOptions{Cores: *cores, Events: *events, Points: *points},
		Schemes:  splitList(*schemes),
		Kernels:  splitList(*kernels),
		Unsealed: *unsealed,
		Shrink:   !*noShrink,
		Jobs:     *jobs,
	}

	var bus *live.Bus
	liveAddr := ""
	if *httpAddr != "" || *progress {
		bus = live.NewBus()
		opts.Bus = bus
	}
	if *httpAddr != "" {
		srv := live.NewServer(bus)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		liveAddr = addr
		fmt.Fprintf(os.Stderr, "cwsplitmus: live endpoint on http://%s (/metrics /progress /events /debug/pprof)\n", addr)
		defer srv.Close()
	}
	if *cacheDir != "" {
		st, err := runner.OpenStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		st.SetBus(bus)
		opts.Store = st
	}

	fmt.Printf("litmus campaign: seed %d, %d shapes x %d schemes x %d kernels = %d cells%s\n",
		*seed, opts.Tests, len(opts.Schemes), len(opts.Kernels),
		opts.Tests*len(opts.Schemes)*len(opts.Kernels), sealNote(*unsealed))
	var tick *live.Ticker
	if *progress {
		tick = live.StartTicker(os.Stderr, bus, 500*time.Millisecond)
	}
	rep, prog, err := litmus.RunCampaign(opts)
	tick.Stop()
	if err != nil {
		fatal(err)
	}

	t := rep.Totals
	fmt.Printf("cells: %d  injected: %d (skipped %d)\n", t.Cells, t.Injected, t.Skipped)
	fmt.Printf("outcomes: %d allowed, %d violations, %d detected, %d unjudged, %d errors\n",
		t.Allowed, t.Violations, t.Detected, t.Unjudged, t.Errors)

	if *out != "" {
		b, err := rep.WriteJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report: %s\n", *out)
	}
	if *metrics != "" {
		m := telemetry.NewManifest("cwsplitmus")
		m.Workload = "litmus"
		m.Scheme = *schemes
		m.LiveAddr = liveAddr
		width := *jobs
		if width <= 0 {
			width = runtime.GOMAXPROCS(0)
		}
		info := prog.Info(width)
		m.Runner = &info
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := m.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("manifest: %s\n", *metrics)
	}

	failures := rep.Failures()
	if t.Errors > 0 {
		fmt.Printf("campaign FAILED: %d cell(s) erred\n", t.Errors)
		os.Exit(1)
	}
	if len(failures) == 0 {
		fmt.Println("campaign PASSED: every observed outcome inside the derived allowed set")
		return
	}

	fmt.Printf("campaign FAILED: %d cell(s) outside the derived allowed set\n", len(failures))
	fmt.Print(rep.CheckReport().String())
	fc := failures[0]
	fmt.Printf("first violation: test %d scheme %s kernel %s: %s %s\n",
		fc.Test, fc.Scheme, fc.Kernel, fc.Code, fc.Msg)
	if fc.Repro != "" {
		fmt.Printf("reproduce with:\n  %s%s\n", fc.Repro, sealFlag(*unsealed))
	} else {
		fmt.Printf("reproduce with:\n  cwsplitmus -replay '%s'%s\n", fc.Result.Spec, sealFlag(*unsealed))
	}
	os.Exit(1)
}

// replayOne runs a single spec, printing its judgment; a violation shrinks
// to a minimal reproducer and exits nonzero.
func replayOne(specStr string, unsealed bool) {
	spec, err := litmus.Parse(specStr)
	if err != nil {
		fatal(err)
	}
	opt := litmus.RunOptions{Unsealed: unsealed}
	res, err := litmus.RunSpec(spec, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spec: %s\n", res.Spec)
	fmt.Printf("crash: cycle %d of %d  observed: %s  allowed set: %d per-core states\n",
		res.Crash, res.GoldenCycles, res.Observed, res.AllowedCount)
	for _, inj := range res.Injected {
		state := "injected"
		if inj.Skipped {
			state = "skipped"
		}
		fmt.Printf("fault: %s %s\n", inj.Kind, state)
	}
	switch res.Outcome {
	case litmus.ResAllowed:
		fmt.Println("outcome: allowed")
	case litmus.ResDetected:
		fmt.Printf("outcome: detected (%v)\n", res.Detected)
	case litmus.ResUnjudged:
		fmt.Printf("outcome: unjudged (%s: %s)\n", res.Code, res.Msg)
	case litmus.ResError:
		fmt.Printf("outcome: error (%s)\n", res.Err)
		os.Exit(1)
	case litmus.ResViolation:
		fmt.Printf("outcome: VIOLATION %s: %s\n", res.Code, res.Msg)
		fmt.Println(res.Diag().String())
		if shrunk, _, err := litmus.Shrink(spec, opt); err == nil {
			fmt.Printf("shrunk reproducer:\n  %s%s\n", litmus.ReplayCommand(shrunk), sealFlag(unsealed))
		}
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func sealNote(unsealed bool) string {
	if unsealed {
		return " (UNSEALED: validation disabled)"
	}
	return ""
}

func sealFlag(unsealed bool) string {
	if unsealed {
		return " -unsealed"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwsplitmus:", err)
	os.Exit(1)
}
