// Command cwsptorture runs seeded adversarial fault-injection campaigns
// against cWSP's recovery protocol: hundreds of crash/recover/re-execute
// cells per invocation, each with reproducible injected corruption (torn
// undo-log records, dropped or reordered WPQ tail entries, corrupted
// checkpoint words) and optionally nested crashes *during* recovery.
//
// The survival criterion is strict: every cell must end clean (rolled back
// to the exact golden NVM image) or detected (a typed CorruptionError from
// a seal-validation layer). A silent NVM divergence fails the campaign and
// is shrunk to a minimal standalone reproducer.
//
// Usage:
//
//	cwsptorture -seed 1 -n 20                  # 20 cells x 5 default workloads
//	cwsptorture -seed 1 -n 100 -depth 3        # 3 nested crashes per cell
//	cwsptorture -w tatp -n 50 -points 4        # one workload, denser faults
//	cwsptorture -seed 1 -n 5 -unsealed         # negative control: must fail
//
// A failing campaign prints a cwsprecover command replaying the shrunk
// plan, e.g.:
//
//	cwsprecover -w tatp -scale smoke -faults 'crashes=350;torn-log@0:3:aa'
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cwsp/internal/compiler"
	"cwsp/internal/faults"
	"cwsp/internal/litmus"
	"cwsp/internal/recovery"
	"cwsp/internal/runner"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry"
	"cwsp/internal/telemetry/live"
	"cwsp/internal/workloads"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "campaign master seed")
		n        = flag.Int("n", 20, "cells (fault plans) per workload")
		wList    = flag.String("w", "tatp,tpcc,rb,kmeans,vacation", "comma-separated workloads")
		scale    = flag.String("scale", "smoke", "workload scale: smoke, quick, full")
		depth    = flag.Int("depth", 2, "crashes per cell (>= 2 crashes recovery itself)")
		points   = flag.Int("points", 3, "fault points per cell")
		jobs     = flag.Int("jobs", 0, "worker pool width (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "write the JSON campaign report here")
		metrics  = flag.String("metrics-out", "", "write a telemetry manifest here")
		cacheDir = flag.String("cache-dir", "", "persistent cell-result cache directory")
		unsealed = flag.Bool("unsealed", false, "disable seal validation (negative control; campaign should fail)")
		noShrink = flag.Bool("no-shrink", false, "skip shrinking the first failing cell")
		httpAddr = flag.String("http", "", "serve the live observability endpoint (/metrics, /progress, /events, /debug/pprof) on this address")
		progress = flag.Bool("progress", true, "live one-line progress/ETA ticker on stderr")
	)
	flag.Parse()

	var targets []recovery.TortureTarget
	for _, name := range strings.Split(*wList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, err := workloads.ByName(name)
		if err != nil {
			fatal(err)
		}
		prog, _, err := compiler.Compile(w.Build(scaleOf(*scale)), compiler.DefaultOptions())
		if err != nil {
			fatal(fmt.Errorf("compile %s: %w", name, err))
		}
		targets = append(targets, recovery.TortureTarget{
			Name:  name,
			Prog:  prog,
			Specs: []sim.ThreadSpec{{Fn: prog.Entry}},
		})
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "cwsptorture: no workloads selected")
		os.Exit(2)
	}

	opts := recovery.TortureOptions{
		Seed:           *seed,
		CellsPerTarget: *n,
		Depth:          *depth,
		Points:         *points,
		Cfg:            sim.DefaultConfig(),
		Sch:            sim.CWSP(),
		Unsealed:       *unsealed,
		Jobs:           *jobs,
	}

	// The ticker and the -http endpoint render the same bus, so the
	// terminal line and a /progress scrape can never disagree.
	var bus *live.Bus
	liveAddr := ""
	if *httpAddr != "" || *progress {
		bus = live.NewBus()
		opts.Bus = bus
	}
	if *httpAddr != "" {
		srv := live.NewServer(bus)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		liveAddr = addr
		fmt.Fprintf(os.Stderr, "cwsptorture: live endpoint on http://%s (/metrics /progress /events /debug/pprof)\n", addr)
		defer srv.Close()
	}

	if *cacheDir != "" {
		st, err := runner.OpenStore(*cacheDir)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		st.SetBus(bus)
		opts.Store = st
	}

	fmt.Printf("campaign: seed %d, %d workloads x %d cells, depth %d, %d points%s\n",
		*seed, len(targets), *n, *depth, *points, sealNote(*unsealed))
	var tick *live.Ticker
	if *progress {
		tick = live.StartTicker(os.Stderr, bus, 500*time.Millisecond)
	}
	rep, prog, err := recovery.RunTorture(targets, opts)
	tick.Stop()
	if err != nil {
		fatal(err)
	}

	t := rep.Totals
	fmt.Printf("cells: %d  crashes: %d  injected: %d (skipped %d)\n",
		t.Cells, t.Crashes, t.Injected, t.Skipped)
	fmt.Printf("outcomes: %d clean, %d detected, %d diverged, %d errors\n",
		t.Clean, t.Detected, t.Diverged, t.Errors)

	if *out != "" {
		b, err := rep.WriteJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report: %s\n", *out)
	}
	if *metrics != "" {
		m := telemetry.NewManifest("cwsptorture")
		m.Workload = *wList
		m.Scheme = opts.Sch.Name
		m.Scale = *scale
		m.LiveAddr = liveAddr
		totals := t
		m.Faults = &totals
		width := *jobs
		if width <= 0 {
			width = runtime.GOMAXPROCS(0)
		}
		info := prog.Info(width)
		m.Runner = &info
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := m.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("manifest: %s\n", *metrics)
	}

	failures := rep.Failures()
	if len(failures) == 0 {
		fmt.Println("campaign PASSED: no silent divergence, no undiagnosed errors")
		return
	}

	fmt.Printf("campaign FAILED: %d cell(s) violated the survival criterion\n", len(failures))
	fc := failures[0]
	fmt.Printf("first failure: workload %s cell %d (plan seed %d): %s\n",
		fc.Workload, fc.Cell, fc.PlanSeed, fc.Outcome)
	spec := fc.Faults
	if !*noShrink {
		if shrunk := shrink(targets, opts, fc); shrunk != "" {
			spec = shrunk
		}
	}
	fmt.Printf("reproduce with:\n  cwsprecover -w %s -scale %s%s -faults '%s'\n",
		fc.Workload, *scale, sealFlag(*unsealed), spec)
	printLitmusRepro(spec, opts.Sch.Name, *unsealed)
	os.Exit(1)
}

// printLitmusRepro prints the equivalent persistency-model litmus replay
// when the failing cell's (shrunk) plan reduces to a litmus-shaped
// interleaving — one crash, persist-path fault kinds only — so the same
// schedule can be judged against the derived allowed outcome set with one
// flag.
func printLitmusRepro(spec, scheme string, unsealed bool) {
	plan, err := faults.ParseSpec(spec)
	if err != nil {
		return
	}
	s, ok := litmus.FromFaultPlan(plan, scheme, litmus.KernelFast)
	if !ok {
		return
	}
	fmt.Printf("litmus-shaped plan; judge the same schedule against the derived outcome set with:\n  %s%s\n",
		litmus.ReplayCommand(s), sealFlag(unsealed))
}

// shrink reduces the failing cell's plan to a minimal reproducer.
func shrink(targets []recovery.TortureTarget, opts recovery.TortureOptions, fc recovery.TortureCell) string {
	var tg *recovery.TortureTarget
	for i := range targets {
		if targets[i].Name == fc.Workload {
			tg = &targets[i]
		}
	}
	if tg == nil {
		return ""
	}
	plan, err := faults.ParseSpec(fc.Faults)
	if err != nil {
		return ""
	}
	cfg := opts.Cfg
	cfg.Recoverable = true
	cfg.Unsealed = opts.Unsealed
	golden, err := recovery.Golden(tg.Prog, cfg, opts.Sch, tg.Specs)
	if err != nil {
		return ""
	}
	fmt.Println("shrinking the failing plan...")
	min, _, err := recovery.Shrink(tg.Prog, cfg, opts.Sch, tg.Specs, plan, golden)
	if err != nil {
		fmt.Printf("  (shrink: %v)\n", err)
		return ""
	}
	fmt.Printf("  shrunk: %d crash(es), %d point(s)\n", min.Depth(), len(min.Points))
	return min.Spec()
}

func sealNote(unsealed bool) string {
	if unsealed {
		return " (UNSEALED: validation disabled)"
	}
	return ""
}

func sealFlag(unsealed bool) string {
	if unsealed {
		return " -unsealed"
	}
	return ""
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "quick":
		return workloads.Quick
	default:
		return workloads.Smoke
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwsptorture:", err)
	os.Exit(1)
}
