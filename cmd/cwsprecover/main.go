// Command cwsprecover demonstrates and verifies cWSP's power-failure
// recovery: it runs a workload, cuts power at one or many cycles, executes
// the recovery protocol (undo-log rollback, recovery-slice replay, region
// re-execution), and diffs the final NVM image against an uninterrupted run
// — the experiment the paper itself leaves as future work (Section VIII).
//
// Usage:
//
//	cwsprecover -w tatp -crash 50000     # one crash point
//	cwsprecover -w radix -sweep 25       # 25 crash points across the run
//	cwsprecover -seed 7 -sweep 50        # a random program instead
//	cwsprecover -w tatp -sweep 50 -jobs 8  # crash points in parallel
//
// Crash points are independent (they share only the program and the golden
// NVM image, both read-only), so -jobs fans the sweep out over a worker
// pool; the report is identical to the serial order.
//
// With -faults it replays one fault-injection experiment — typically a
// reproducer printed by a failing cwsptorture campaign:
//
//	cwsprecover -w tatp -faults 'crashes=350,700;torn-log@0:3:ffffffff00000000'
//
// Exit status: 0 for clean or detected (survival), 1 for silent divergence
// or an undiagnosed error.
package main

import (
	"flag"
	"fmt"
	"os"

	"cwsp/internal/compiler"
	"cwsp/internal/faults"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
	"cwsp/internal/recovery"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry/live"
	"cwsp/internal/workloads"
)

func main() {
	var (
		wName    = flag.String("w", "", "workload name")
		seed     = flag.Int64("seed", -1, "random program seed (instead of -w)")
		scale    = flag.String("scale", "smoke", "workload scale: smoke, quick, full")
		crash    = flag.Int64("crash", 0, "single crash cycle (0 = use -sweep)")
		sweep    = flag.Int("sweep", 20, "number of evenly spaced crash points")
		jobs     = flag.Int("jobs", 1, "parallel crash points (0 = GOMAXPROCS, 1 = serial)")
		spec     = flag.String("faults", "", "fault plan spec to replay (see cwsptorture)")
		unsealed = flag.Bool("unsealed", false, "disable seal validation (negative control)")
		httpAddr = flag.String("http", "", "serve the live observability endpoint (/metrics, /progress, /events, /debug/pprof) on this address")
	)
	flag.Parse()

	var bus *live.Bus
	if *httpAddr != "" {
		bus = live.NewBus()
		srv := live.NewServer(bus)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cwsprecover: live endpoint on http://%s (/metrics /progress /events /debug/pprof)\n", addr)
		defer srv.Close()
	}

	var prog *ir.Program
	switch {
	case *seed >= 0:
		prog = progen.Generate(*seed, progen.DefaultConfig())
	case *wName != "":
		w, err := workloads.ByName(*wName)
		if err != nil {
			fatal(err)
		}
		prog = w.Build(scaleOf(*scale))
	default:
		fmt.Fprintln(os.Stderr, "cwsprecover: need -w <workload> or -seed <n>")
		os.Exit(2)
	}

	compiled, rep, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compiled: %d regions, %d checkpoints (%d pruned)\n",
		rep.TotalRegions(), rep.TotalCheckpoints(), rep.PrunedCheckpoints())

	cfg := sim.DefaultConfig()
	cfg.Unsealed = *unsealed
	specs := []sim.ThreadSpec{{Fn: compiled.Entry}}
	golden, err := recovery.Golden(compiled, cfg, sim.CWSP(), specs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("golden run: %d cycles, %d instructions\n", golden.Stats.Cycles, golden.Stats.Instrs)

	if *spec != "" {
		plan, err := faults.ParseSpec(*spec)
		if err != nil {
			fatal(err)
		}
		r, err := recovery.CheckFaults(compiled, cfg, sim.CWSP(), specs, plan, golden)
		if err != nil {
			fatal(err)
		}
		reportFaults(r)
		if r.Failed() {
			os.Exit(1)
		}
		return
	}

	if *crash > 0 {
		res, err := recovery.Check(compiled, cfg, sim.CWSP(), specs, *crash, golden)
		if err != nil {
			fatal(err)
		}
		report(res)
		if !res.Match {
			os.Exit(1)
		}
		return
	}

	var (
		fail    *recovery.CheckResult
		checked int
	)
	if *jobs == 1 {
		fail, checked, err = recovery.Sweep(compiled, cfg, sim.CWSP(), specs, *sweep)
	} else {
		fail, checked, err = recovery.SweepParallel(compiled, cfg, sim.CWSP(), specs, *sweep, *jobs, bus)
	}
	if err != nil {
		fatal(err)
	}
	if fail != nil {
		report(fail)
		os.Exit(1)
	}
	fmt.Printf("all %d crash points recovered to the exact golden NVM state\n", checked)
}

func reportFaults(r *recovery.FaultResult) {
	fmt.Printf("fault replay: crashes at cycles %v\n", r.Crashes)
	for _, inj := range r.Injected {
		if inj.Skipped {
			fmt.Printf("  crash %d: %s skipped (no eligible victim)\n", inj.Crash, inj.Kind)
			continue
		}
		fmt.Printf("  crash %d: %s journal[%d] addr 0x%x xor %x\n",
			inj.Crash, inj.Kind, inj.Index, inj.Addr, inj.XOR)
	}
	switch r.Outcome {
	case recovery.OutcomeClean:
		fmt.Printf("  outcome: clean — recovered to golden NVM after %d re-executed instructions\n", r.ReExecuted)
	case recovery.OutcomeDetected:
		fmt.Printf("  outcome: detected — %v\n", r.Detected)
	case recovery.OutcomeDiverged:
		fmt.Printf("  outcome: SILENT DIVERGENCE at addresses %v\n", r.DiffAddrs)
	default:
		fmt.Printf("  outcome: error — %s\n", r.Err)
	}
}

func report(r *recovery.CheckResult) {
	fmt.Printf("crash at cycle %d:\n", r.CrashCycle)
	for _, ri := range r.RestartedAt {
		fmt.Printf("  core %d restarts at %s region %d (b%d[%d], depth %d)\n",
			ri.Core, ri.Fn, ri.StaticID, ri.Ref.Block, ri.Ref.Index, ri.Depth)
	}
	if r.Match {
		fmt.Printf("  recovered: NVM identical to golden after %d re-executed instructions\n", r.ReExecuted)
	} else {
		fmt.Printf("  MISMATCH at addresses %v\n", r.DiffAddrs)
	}
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "quick":
		return workloads.Quick
	default:
		return workloads.Smoke
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwsprecover:", err)
	os.Exit(1)
}
