// Command cwspc is the cWSP compiler driver: it compiles a named workload
// (or a random generated program) and reports region formation, checkpoint
// pruning, and — with -dump — the transformed IR with recovery slices.
//
// Usage:
//
//	cwspc -w lbm                # compile the lbm workload, print statistics
//	cwspc -w tpcc -dump         # also dump the IR
//	cwspc -seed 42 -dump        # compile a random program instead
//	cwspc -w radix -no-prune    # disable checkpoint pruning (ablation)
package main

import (
	"flag"
	"fmt"
	"os"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/minic"
	"cwsp/internal/opt"
	"cwsp/internal/progen"
	"cwsp/internal/stats"
	"cwsp/internal/workloads"
)

func main() {
	var (
		wName   = flag.String("w", "", "workload name (see -list)")
		list    = flag.Bool("list", false, "list workloads and exit")
		srcFile = flag.String("src", "", "compile a minic source file (.mc)")
		seed    = flag.Int64("seed", -1, "compile a random program with this seed instead of a workload")
		scale   = flag.String("scale", "quick", "workload scale: smoke, quick, full")
		dump    = flag.Bool("dump", false, "dump the compiled IR (regions, checkpoints, recovery slices)")
		noPrune = flag.Bool("no-prune", false, "disable checkpoint pruning")
		optim   = flag.Bool("O", false, "run classical optimizations (fold/propagate/DCE) before the cWSP passes")
		doCheck = flag.Bool("check", false, "run the independent soundness verifier on the compiled program")
		emitIR  = flag.String("emit-ir", "", "write the compiled program in the text interchange format to this file")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Suite)
		}
		return
	}

	var prog *ir.Program
	switch {
	case *srcFile != "":
		data, err := os.ReadFile(*srcFile)
		if err != nil {
			fatal(err)
		}
		prog, err = minic.CompileNamed(string(data), *srcFile)
		if err != nil {
			fatal(err)
		}
	case *seed >= 0:
		prog = progen.Generate(*seed, progen.DefaultConfig())
	case *wName != "":
		w, err := workloads.ByName(*wName)
		if err != nil {
			fatal(err)
		}
		prog = w.Build(scaleOf(*scale))
	default:
		fmt.Fprintln(os.Stderr, "cwspc: need -src <file.mc>, -w <workload>, or -seed <n>; see -list")
		os.Exit(2)
	}

	if *optim {
		ost, err := opt.Optimize(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("opt: folded %d, propagated %d, eliminated %d\n", ost.Folded, ost.Propagated, ost.Eliminated)
	}

	copts := compiler.DefaultOptions()
	copts.PruneCheckpoints = !*noPrune
	copts.Check = *doCheck
	out, rep, err := compiler.Compile(prog, copts)
	if err != nil {
		fatal(err)
	}
	if *doCheck {
		fmt.Printf("check: %d diagnostics, %d errors\n", len(rep.Check.Diags), rep.Check.Errors())
	}

	t := stats.NewTable("function", "regions", "antidep-cuts", "ckpt-inserted", "ckpt-final", "pruned%")
	for _, f := range rep.Funcs {
		rate := 0.0
		if f.Ckpt.Inserted > 0 {
			rate = 100 * float64(f.Ckpt.Pruned) / float64(f.Ckpt.Inserted)
		}
		t.AddF(f.Name, f.Regions.Total, f.Regions.AntidepCuts, f.Ckpt.Inserted, f.Ckpt.Final, rate)
	}
	fmt.Print(t.String())
	fmt.Printf("total: %d regions, %d checkpoints (%d pruned)\n",
		rep.TotalRegions(), rep.TotalCheckpoints(), rep.PrunedCheckpoints())

	if *emitIR != "" {
		fh, err := os.Create(*emitIR)
		if err != nil {
			fatal(err)
		}
		if err := out.MarshalText(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *emitIR)
	}

	if *dump {
		fmt.Println()
		fmt.Print(out.Dump())
	}
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "smoke":
		return workloads.Smoke
	default:
		return workloads.Quick
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwspc:", err)
	os.Exit(1)
}
