// Command cwsplint runs the independent persistence-soundness verifier
// (internal/check) over cWSP programs and reports CWSP0xx diagnostics.
//
// Inputs can come from three places, combined freely:
//
//	cwsplint prog.mc             # compile miniC + pipeline, then check
//	cwsplint prog.ir             # check an already-compiled IR dump
//	cwsplint -seed 7 -count 20   # check 20 generated programs (seeds 7..26)
//	cwsplint -w tpcc             # check a named workload
//	cwsplint -json prog.mc       # machine-readable report
//
// .mc files are compiled through the full pipeline first; .ir files are
// expected to already carry regions and recovery slices (checked with
// RequireCompiled). Exit status: 0 clean, 1 diagnostics with error
// severity, 2 usage or I/O failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cwsp/internal/check"
	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/minic"
	"cwsp/internal/progen"
	"cwsp/internal/workloads"
)

func main() {
	var (
		seed    = flag.Int64("seed", -1, "check generated programs starting at this seed")
		count   = flag.Int("count", 1, "number of consecutive seeds to check (with -seed)")
		wName   = flag.String("w", "", "check a named workload (see cwspc -list)")
		scale   = flag.String("scale", "quick", "workload scale: smoke, quick, full")
		asJSON  = flag.Bool("json", false, "emit the combined report as JSON")
		noPrune = flag.Bool("no-prune", false, "disable checkpoint pruning when compiling inputs")
		quiet   = flag.Bool("q", false, "suppress per-input status lines (diagnostics still print)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cwsplint [flags] [file.mc|file.ir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() == 0 && *seed < 0 && *wName == "" {
		flag.Usage()
		os.Exit(2)
	}

	copts := compiler.DefaultOptions()
	copts.PruneCheckpoints = !*noPrune

	combined := &check.Report{}
	checked := 0

	runChecked := func(label string, p *ir.Program) {
		rep := check.CheckProgramOpts(p, check.Options{RequireCompiled: true})
		merge(combined, label, rep)
		checked++
		if !*quiet && !*asJSON {
			status := "ok"
			if rep.HasErrors() {
				status = fmt.Sprintf("%d errors", rep.Errors())
			}
			fmt.Printf("%-40s %s\n", label, status)
		}
	}

	compileAndCheck := func(label string, p *ir.Program) {
		out, _, err := compiler.Compile(p, copts)
		if err != nil {
			fatal(err)
		}
		runChecked(label, out)
	}

	for _, arg := range flag.Args() {
		switch strings.ToLower(filepath.Ext(arg)) {
		case ".mc":
			data, err := os.ReadFile(arg)
			if err != nil {
				fatal(err)
			}
			p, err := minic.CompileNamed(string(data), arg)
			if err != nil {
				fatal(err)
			}
			compileAndCheck(arg, p)
		case ".ir":
			fh, err := os.Open(arg)
			if err != nil {
				fatal(err)
			}
			p, err := ir.UnmarshalText(fh)
			fh.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", arg, err))
			}
			runChecked(arg, p)
		default:
			fatal(fmt.Errorf("%s: unknown input type (want .mc or .ir)", arg))
		}
	}

	if *seed >= 0 {
		for i := 0; i < *count; i++ {
			s := *seed + int64(i)
			compileAndCheck(fmt.Sprintf("seed %d", s), progen.Generate(s, progen.DefaultConfig()))
		}
	}

	if *wName != "" {
		w, err := workloads.ByName(*wName)
		if err != nil {
			fatal(err)
		}
		compileAndCheck("workload "+*wName, w.Build(scaleOf(*scale)))
	}

	if *asJSON {
		if err := combined.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		if len(combined.Diags) > 0 {
			fmt.Print(combined.String())
		}
		if !*quiet {
			fmt.Printf("checked %d program(s): %d diagnostics, %d errors\n",
				checked, len(combined.Diags), combined.Errors())
		}
	}
	if combined.HasErrors() {
		os.Exit(1)
	}
}

// merge appends rep's diagnostics to dst, prefixing each function name with
// the input label so multi-input runs stay attributable.
func merge(dst *check.Report, label string, rep *check.Report) {
	for _, d := range rep.Diags {
		if d.Fn == "" {
			d.Fn = label
		} else {
			d.Fn = label + ":" + d.Fn
		}
		dst.Diags = append(dst.Diags, d)
	}
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "smoke":
		return workloads.Smoke
	default:
		return workloads.Quick
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwsplint:", err)
	os.Exit(2)
}
