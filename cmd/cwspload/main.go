// Command cwspload is the load generator for the cwspd experiment
// daemon: N concurrent clients submit a mixed cold/warm campaign stream,
// absorb admission backpressure by honoring Retry-After, and measure what
// the fleet sees — requests/sec, cells/sec, warm cache-hit ratio,
// end-to-end request latency quantiles, and admission-queue contention.
//
// Point it at a running daemon, or let it bring one up itself:
//
//	cwspload -addr http://127.0.0.1:8080 -clients 32 -requests 4
//	cwspload -spawn -clients 32                  # in-process daemon
//	cwspload -spawn-bin ./bin/cwspd -clients 32  # real subprocess, SIGTERM shutdown
//
// -smoke runs the acceptance ritual instead of a storm: submit a small
// sweep twice, assert the repeat is byte-identical and served ≥99% from
// the shared cache, shut down cleanly.
//
//	cwspload -spawn-bin ./bin/cwspd -smoke
//
// -chaos runs the seeded crash-recovery campaign: spawn a real cwspd with
// a durable journal, SIGKILL it at seeded points (mid-queue, mid-campaign,
// mid-flush), restart it each time, and assert zero accepted-but-lost
// campaigns, idempotent replay of journaled results, and a final report
// byte-identical to an uninterrupted run.
//
//	cwspload -spawn-bin ./bin/cwspd -chaos -chaos-kills 20 -seed 1
//
// The run's profile lands on the bench trajectory like any other sweep:
//
//	cwspload -spawn -bench-out BENCH_service.json
//	cwspload -bench-in BENCH_service.json -bench-check baselines/BENCH_service.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"cwsp/internal/service"
	"cwsp/internal/telemetry"
	"cwsp/internal/telemetry/benchfmt"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8080)")
		spawn    = flag.Bool("spawn", false, "run an in-process daemon on a loopback port for the duration")
		spawnBin = flag.String("spawn-bin", "", "spawn this cwspd binary as a subprocess (SIGTERM shutdown) instead of -spawn")
		cacheDir = flag.String("cache-dir", "", "spawned daemon's cache dir (default: a temp dir, removed after)")
		jourDir  = flag.String("journal-dir", "", "spawned daemon's durable campaign journal dir (empty = no durability)")
		queue    = flag.Int("queue", 16, "spawned daemon's admission-queue capacity")
		workers  = flag.Int("workers", 2, "spawned daemon's campaign worker groups")
		jobs     = flag.Int("jobs", 1, "spawned daemon's per-campaign pool width")

		smoke    = flag.Bool("smoke", false, "acceptance mode: sweep twice, assert byte-identity + warm cache, clean shutdown")
		chaos    = flag.Bool("chaos", false, "crash-recovery mode: SIGKILL/restart a journaled daemon at seeded points (needs -spawn-bin)")
		chaosKls = flag.Int("chaos-kills", 20, "seeded SIGKILL points across the queue/run/flush phases")
		chaosCmp = flag.Int("chaos-campaigns", 6, "base keyed campaigns in the chaos workload (each kill adds one more)")
		chaosDir = flag.String("chaos-dir", "", "chaos daemon's cache+journal root (default: a temp dir, removed after)")
		clients  = flag.Int("clients", 32, "concurrent load clients")
		requests = flag.Int("requests", 4, "campaigns per client")
		warmFrac = flag.Float64("warm-frac", 0.5, "fraction of traffic drawn from the shared warm seed pool")
		warmSeed = flag.Int("warm-seeds", 4, "warm seed pool size")
		seed     = flag.Int64("seed", 1, "traffic-mix seed")
		poll     = flag.Duration("poll", 25*time.Millisecond, "campaign completion poll interval")

		metOut   = flag.String("metrics-out", "", "write a telemetry manifest (with service info) to this file")
		benchOut = flag.String("bench-out", "", "emit a benchfmt trajectory record (BENCH_<name>.json) for this run")
		benchIn  = flag.String("bench-in", "", "with -bench-check: compare this existing record instead of running load")
		checkVs  = flag.String("bench-check", "", "gate the run's record against this baseline record; exit 1 on regression")
		strict   = flag.Bool("bench-strict", false, "enforce wall-clock gates even across differing host fingerprints")
		tol      = flag.Float64("bench-tol", 0.15, "fractional regression tolerance for bench-check")
		quiet    = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	// Compare-only mode: gate an existing record without generating load.
	if *benchIn != "" {
		if *checkVs == "" {
			fatal(fmt.Errorf("-bench-in needs -bench-check <baseline>"))
		}
		cur, err := benchfmt.ReadFile(*benchIn)
		if err != nil {
			fatal(err)
		}
		os.Exit(checkRecord(cur, *checkVs, *tol, *strict))
	}

	var log io.Writer
	if !*quiet {
		log = os.Stderr
	}

	// Chaos mode manages its own daemon lifecycle (it kills and restarts
	// the binary repeatedly), so it bypasses the spawn plumbing below.
	if *chaos {
		if *spawnBin == "" {
			fatal(fmt.Errorf("-chaos needs -spawn-bin <cwspd> (the harness SIGKILLs and restarts a real daemon)"))
		}
		rep, err := service.RunChaos(context.Background(), service.ChaosOptions{
			Bin: *spawnBin, Dir: *chaosDir,
			Campaigns: *chaosCmp, Kills: *chaosKls, Seed: *seed,
			Queue: *queue, Workers: *workers, Jobs: *jobs,
			Poll: *poll, Log: log,
		})
		if rep != nil {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println("cwspload: chaos ok (0 lost campaigns, idempotent replay, byte-identical results)")
		return
	}

	base := *addr
	var stop func() error
	switch {
	case *spawnBin != "":
		var err error
		base, stop, err = spawnSubprocess(*spawnBin, *cacheDir, *jourDir, *queue, *workers, *jobs, log)
		if err != nil {
			fatal(err)
		}
	case *spawn:
		var err error
		base, stop, err = spawnInProcess(*cacheDir, *jourDir, *queue, *workers, *jobs, log)
		if err != nil {
			fatal(err)
		}
	case base == "":
		fatal(fmt.Errorf("need -addr <url>, -spawn, or -spawn-bin <cwspd>"))
	}
	shutdown := func() {
		if stop == nil {
			return
		}
		if err := stop(); err != nil {
			fatal(fmt.Errorf("daemon shutdown: %w", err))
		}
		stop = nil
	}
	defer shutdown()

	ctx := context.Background()
	if *smoke {
		if err := runSmoke(ctx, base, *poll, log); err != nil {
			fatal(err)
		}
		shutdown()
		fmt.Println("cwspload: smoke ok (byte-identical repeat, warm cache, clean shutdown)")
		return
	}

	rep, err := service.RunLoad(ctx, base, service.LoadOptions{
		Clients:   *clients,
		Requests:  *requests,
		WarmFrac:  *warmFrac,
		WarmSeeds: *warmSeed,
		Seed:      *seed,
		Poll:      *poll,
		Log:       log,
	})
	if err != nil {
		fatal(err)
	}
	stats, statsErr := (&service.Client{Base: base, ID: "cwspload"}).Stats(ctx)
	shutdown()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)

	if *metOut != "" {
		man := telemetry.NewManifest("cwspload")
		man.Service = &telemetry.ServiceInfo{
			Addr:       strings.TrimPrefix(base, "http://"),
			ClientID:   "cwspload",
			QueueDepth: int(rep.QueueDepthMax),
		}
		if statsErr == nil {
			man.Service.QueueCap = stats.QueueCap
			man.Service.Recovered = stats.Recovered
			man.Service.Requeued = stats.Requeued
			if stats.Journal != nil {
				man.Service.JournalRecords = stats.Journal.Appended
				man.Service.JournalTornBytes = stats.Journal.TornBytes
			}
		}
		raw, _ := json.Marshal(rep)
		man.Stats = raw
		fh, err := os.Create(*metOut)
		if err != nil {
			fatal(err)
		}
		if err := man.Write(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}

	if *benchOut != "" || *checkVs != "" {
		name := "service"
		if *benchOut != "" {
			name = benchfmt.NameFromPath(*benchOut)
		} else if *checkVs != "" {
			name = benchfmt.NameFromPath(*checkVs)
		}
		rec := benchfmt.New(name, "cwspload")
		rec.WallMS = rep.WallMS
		rec.Cells = rep.CellsDone
		if rep.WallMS > 0 {
			rec.CellsPerSec = rep.CellsPerSec
		}
		rec.Service = rep.Profile()
		if *benchOut != "" {
			if err := rec.WriteFile(*benchOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cwspload: wrote trajectory record %s\n", *benchOut)
		}
		if *checkVs != "" {
			os.Exit(checkRecord(rec, *checkVs, *tol, *strict))
		}
	}
}

// runSmoke is the acceptance ritual: the same small sweep twice, repeat
// byte-identical and served from the shared cache.
func runSmoke(ctx context.Context, base string, poll time.Duration, log io.Writer) error {
	cli := &service.Client{Base: base, ID: "smoke"}
	spec := service.Spec{Kind: service.KindSweep, Experiments: []string{"fig06"}, Scale: "smoke"}

	fetch := func(pass string) ([]byte, string, error) {
		v, _, err := cli.SubmitWait(ctx, spec, poll)
		if err != nil {
			return nil, "", fmt.Errorf("%s sweep: %w", pass, err)
		}
		if v.State != service.StateDone {
			return nil, "", fmt.Errorf("%s sweep ended %s: %s", pass, v.State, v.Error)
		}
		raw, err := cli.Result(ctx, v.ID)
		return raw, v.ID, err
	}
	r1, _, err := fetch("cold")
	if err != nil {
		return err
	}
	r2, id2, err := fetch("warm")
	if err != nil {
		return err
	}
	if !bytes.Equal(r1, r2) {
		return fmt.Errorf("repeated sweep changed bytes (%d vs %d)", len(r1), len(r2))
	}
	p2, err := cli.Progress(ctx, id2)
	if err != nil {
		return err
	}
	if p2.HitRatio < 0.99 {
		return fmt.Errorf("warm sweep hit ratio %.3f (executed %d of %d), want >= 0.99",
			p2.HitRatio, p2.Executed, p2.Done)
	}
	if log != nil {
		fmt.Fprintf(log, "cwspload: smoke: %d cells, warm hit ratio %.3f\n", p2.Done, p2.HitRatio)
	}
	return nil
}

// spawnInProcess runs a daemon inside this process on a loopback port.
func spawnInProcess(cacheDir, journalDir string, queue, workers, jobs int, log io.Writer) (string, func() error, error) {
	dir, cleanup, err := ensureCacheDir(cacheDir)
	if err != nil {
		return "", nil, err
	}
	svc, err := service.New(service.Options{
		CacheDir: dir, JournalDir: journalDir,
		Queue: queue, Workers: workers, Jobs: jobs, Log: log,
	})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	srv := service.NewServer(svc)
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		svc.Close()
		cleanup()
		return "", nil, err
	}
	if log != nil {
		fmt.Fprintf(log, "cwspload: in-process daemon on http://%s\n", bound)
	}
	stop := func() error {
		srv.Close()
		err := svc.Close()
		cleanup()
		return err
	}
	return "http://" + bound, stop, nil
}

// spawnSubprocess execs a cwspd binary on a free port, parses its
// listening line for the address, and shuts it down with SIGTERM.
func spawnSubprocess(bin, cacheDir, journalDir string, queue, workers, jobs int, log io.Writer) (string, func() error, error) {
	dir, cleanup, err := ensureCacheDir(cacheDir)
	if err != nil {
		return "", nil, err
	}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-cache-dir", dir,
		"-queue", fmt.Sprint(queue),
		"-workers", fmt.Sprint(workers),
		"-jobs", fmt.Sprint(jobs),
	}
	if journalDir != "" {
		args = append(args, "-journal-dir", journalDir)
	}
	cmd := exec.Command(bin, args...)
	if log != nil {
		cmd.Stderr = log
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		cleanup()
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("spawn %s: %w", bin, err)
	}

	// The daemon's first stdout line is the listening contract.
	lines := bufio.NewScanner(out)
	base := ""
	for lines.Scan() {
		if _, after, ok := strings.Cut(lines.Text(), "listening on "); ok {
			base = strings.TrimSpace(after)
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		cleanup()
		return "", nil, fmt.Errorf("spawn %s: no listening line on stdout", bin)
	}
	if log != nil {
		fmt.Fprintf(log, "cwspload: spawned %s (pid %d) at %s\n", bin, cmd.Process.Pid, base)
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	go func() {
		for lines.Scan() {
		}
	}()

	stop := func() error {
		defer cleanup()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("SIGTERM: %w", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			<-done
			return fmt.Errorf("daemon did not drain within 60s of SIGTERM")
		}
	}
	return base, stop, nil
}

// ensureCacheDir resolves the spawned daemon's cache dir: the given path
// (kept), or a temp dir (removed by the returned cleanup).
func ensureCacheDir(dir string) (string, func(), error) {
	if dir != "" {
		return dir, func() {}, nil
	}
	tmp, err := os.MkdirTemp("", "cwspd-cache-")
	if err != nil {
		return "", nil, err
	}
	return tmp, func() { os.RemoveAll(tmp) }, nil
}

// checkRecord gates cur against the baseline at path; returns the exit
// code (0 pass, 1 regression).
func checkRecord(cur *benchfmt.Record, baselinePath string, tol float64, strict bool) int {
	base, err := benchfmt.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	cmp, err := benchfmt.Compare(base, cur, benchfmt.CompareOptions{Tol: tol, Strict: strict})
	if err != nil {
		fatal(err)
	}
	cmp.Write(os.Stdout)
	if cmp.Failed() {
		fmt.Fprintln(os.Stderr, "cwspload: bench-check FAILED: enforced metric regressed beyond tolerance")
		return 1
	}
	fmt.Println("bench-check: ok")
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwspload:", err)
	os.Exit(1)
}
