// Command cwspd is the long-running experiment daemon: it accepts sweep,
// torture, and litmus campaign specs over HTTP, runs them on a bounded
// worker pool behind an admission queue with real backpressure (a full
// queue answers 429 + Retry-After, never buffers unboundedly), and serves
// every cell from a shared content-addressed cache — a campaign one
// client paid to simulate is a cache hit for every later client.
//
// Usage:
//
//	cwspd -addr :8080 -cache-dir .cwspd-cache
//	cwspd -addr :8080 -cache-dir .cwspd-cache -workers 4 -jobs 2 \
//	      -max-store-bytes 268435456 -compact-every 32
//	cwspd -addr :8080 -cache-dir .cwspd-cache -journal-dir .cwspd-journal \
//	      -lock-wait 10s                       # crash-recoverable daemon
//
// API (JSON over HTTP):
//
//	POST /api/v1/campaigns                submit a spec   → 202 view | 429 busy
//	GET  /api/v1/campaigns                list campaigns
//	GET  /api/v1/campaigns/{id}           one campaign's view
//	GET  /api/v1/campaigns/{id}/progress  live pace snapshot
//	GET  /api/v1/campaigns/{id}/result    payload (409 while running)
//	GET  /api/v1/stats                    daemon digest (queue, store, EWMA)
//
// Everything else — /metrics, /progress, /events (SSE), /debug/pprof —
// is the live observability endpoint shared with cwspbench -http.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, queued
// campaigns abort with a terminal state, running campaigns drain, the
// store compacts and closes. A second signal exits immediately.
//
// With -journal-dir, every admission is fsynced to a write-ahead log
// before the client sees 202, and a restarted daemon replays the journal:
// terminal campaigns come back with their results, anything that never
// finished is re-admitted and re-run against the warm cache. SIGKILL is
// survivable; client-supplied idempotency keys (spec "key") make retried
// submissions land on the recovered campaign instead of duplicating it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cwsp/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		cacheDir   = flag.String("cache-dir", ".cwspd-cache", "shared content-addressed cell cache (created if missing)")
		queue      = flag.Int("queue", 16, "admission-queue capacity; beyond it submissions get 429 + Retry-After")
		workers    = flag.Int("workers", 2, "concurrent campaign-runner goroutine groups")
		jobs       = flag.Int("jobs", 1, "simulation-cell pool width inside each campaign")
		maxBytes   = flag.Int64("max-store-bytes", 0, "LRU-evict the shared cache beyond this size (0 = unbounded)")
		compactEvy = flag.Int("compact-every", 0, "compact the store every N completed campaigns (0 = only at shutdown)")
		journalDir = flag.String("journal-dir", "", "durable campaign journal: fsync admissions to a WAL here and replay it on boot (empty = no durability)")
		lockWait   = flag.Duration("lock-wait", 0, "wait up to this long for cache/journal locks still held by a dying previous daemon (0 = fail fast)")
		quiet      = flag.Bool("q", false, "suppress per-campaign log lines")
	)
	flag.Parse()

	opts := service.Options{
		CacheDir:      *cacheDir,
		MaxStoreBytes: *maxBytes,
		CompactEvery:  *compactEvy,
		Queue:         *queue,
		Workers:       *workers,
		Jobs:          *jobs,
		JournalDir:    *journalDir,
		LockWait:      *lockWait,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	svc, err := service.New(opts)
	if err != nil {
		fatal(err)
	}
	if st := svc.Stats(); st.Recovered > 0 {
		fmt.Fprintf(os.Stderr, "cwspd: recovered %d journaled campaigns (%d re-admitted)\n",
			st.Recovered, st.Requeued)
	}
	srv := service.NewServer(svc)
	bound, err := srv.Start(*addr)
	if err != nil {
		svc.Close()
		fatal(err)
	}
	// The listening line is a contract: cwspload -spawn-bin parses it to
	// find the daemon it just started.
	fmt.Printf("cwspd: listening on http://%s\n", bound)
	os.Stdout.Sync()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "cwspd: %v: draining (again to force exit)\n", sig)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "cwspd: forced exit")
		os.Exit(1)
	}()

	srv.Close()
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "cwspd: clean shutdown")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwspd:", err)
	os.Exit(1)
}
