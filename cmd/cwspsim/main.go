// Command cwspsim runs one workload under one crash-consistency scheme on
// the cycle-level machine and prints the run statistics.
//
// Usage:
//
//	cwspsim -w lbm                          # cWSP on the default machine
//	cwspsim -w lbm -scheme base             # the uninstrumented baseline
//	cwspsim -w radix -scheme capri -bw 32   # Capri with a 32 GB/s persist path
//	cwspsim -w tatp -compare                # baseline + cWSP, with slowdown
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/nvmtech"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

func main() {
	var (
		wName   = flag.String("w", "", "workload name")
		schName = flag.String("scheme", "cwsp", "scheme: base, cwsp, capri, ido, replaycache, psp-ideal, ...")
		scale   = flag.String("scale", "quick", "workload scale: smoke, quick, full")
		bw      = flag.Float64("bw", 4, "persist path bandwidth in GB/s")
		tech    = flag.String("nvm", "PMEM", "NVM technology: PMEM, STTRAM, ReRAM, CXL-A..D")
		l3      = flag.Bool("l3", false, "use the deeper 3-level SRAM hierarchy")
		compare = flag.Bool("compare", false, "also run the baseline and print the slowdown")
		jsonOut = flag.Bool("json", false, "emit statistics as JSON")
		mt      = flag.Int("mt", 0, "run the lock-based multicore benchmark on N cores instead of -w")
		irFile  = flag.String("ir", "", "run a program from a text-IR file (see cwspc -emit-ir) instead of -w")
		traceTo = flag.String("trace", "", "write a machine event trace (regions/persists/syncs/calls) to this file")
		traceN  = flag.Int64("trace-limit", 100000, "maximum trace events")
		perfTo  = flag.String("trace-perfetto", "", "write a Chrome trace-event JSON (loadable in ui.perfetto.dev) to this file")
		metOut  = flag.String("metrics-out", "", "write a versioned run manifest (config, stats, histograms, series) to this JSON file")
		tsOut   = flag.String("timeseries", "", "write the sampled telemetry time series as CSV to this file")
		smplIv  = flag.Int64("sample-interval", 4096, "telemetry sampling interval in cycles (with -metrics-out/-timeseries)")
		kernel  = flag.String("kernel", "fast", "simulation kernel: fast (alias batched), threaded (translate-once closure arrays), or reference (the legacy per-cycle stepper); all bit-identical, for cross-checking")
	)
	flag.Parse()
	if *wName == "" && *mt == 0 && *irFile == "" {
		fmt.Fprintln(os.Stderr, "cwspsim: need -w <workload>, -ir <file>, or -mt <cores> (see cwspc -list)")
		os.Exit(2)
	}
	sch, ok := schemes.ByName(*schName)
	if !ok {
		fatal(fmt.Errorf("unknown scheme %q", *schName))
	}

	cfg := sim.DefaultConfig().PersistPathGBs(*bw)
	switch *kernel {
	case "fast", "batched":
		cfg.Kernel = sim.KernelBatched
	case "threaded":
		cfg.Kernel = sim.KernelThreaded
	case "reference":
		cfg.Kernel = sim.KernelReference
	default:
		fatal(fmt.Errorf("unknown kernel %q (want fast, batched, threaded, or reference)", *kernel))
	}
	if t, ok := nvmtech.All[*tech]; ok {
		cfg = cfg.WithNVM(t)
	} else {
		fatal(fmt.Errorf("unknown NVM technology %q", *tech))
	}
	if *l3 {
		cfg = cfg.WithL3()
	}
	cfg = schemes.ConfigFor(sch, cfg)

	var prog *ir.Program
	var specs []sim.ThreadSpec
	name := *wName
	preCompiled := false
	if *irFile != "" {
		fh, err := os.Open(*irFile)
		if err != nil {
			fatal(err)
		}
		prog, err = ir.UnmarshalText(fh)
		fh.Close()
		if err != nil {
			fatal(err)
		}
		name = *irFile
		specs = []sim.ThreadSpec{{Fn: prog.Entry}}
		// A file that already contains regions is treated as compiled.
		preCompiled = prog.EntryFunc().NumRegions > 0
	} else if *mt > 0 {
		name = fmt.Sprintf("mtworker x%d", *mt)
		prog = workloads.BuildMTWorker()
		cfg.Cores = *mt
		iters := int64(4096 / *mt)
		for t := 0; t < *mt; t++ {
			specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(t), iters}})
		}
	} else {
		w, err := workloads.ByName(*wName)
		if err != nil {
			fatal(err)
		}
		prog = w.Build(scaleOf(*scale))
		specs = []sim.ThreadSpec{{Fn: prog.Entry}}
	}
	run := prog
	if schemes.NeedsCompiledProgram(sch) && !preCompiled {
		var err error
		run, _, err = compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			fatal(err)
		}
	}

	// Trace output is buffered; fatal() calls os.Exit, so flushes are
	// collected and run explicitly after the run rather than deferred.
	var tracers sim.MultiTracer
	var flushes []func() error
	if *traceTo != "" {
		fh, err := os.Create(*traceTo)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(fh)
		tracers = append(tracers, &sim.WriteTracer{W: bw, Limit: *traceN})
		flushes = append(flushes, func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return fh.Close()
		})
	}
	if *perfTo != "" {
		fh, err := os.Create(*perfTo)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(fh)
		pt := sim.NewPerfettoTracer(bw)
		pt.SetLimit(*traceN)
		tracers = append(tracers, pt)
		flushes = append(flushes, func() error {
			if err := pt.Close(); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return fh.Close()
		})
	}
	var tracer sim.Tracer
	switch len(tracers) {
	case 0:
	case 1:
		tracer = tracers[0]
	default:
		tracer = tracers
	}

	telemetryOn := *metOut != "" || *tsOut != ""
	m, st := runOne(run, cfg, sch, specs, tracer, telemetryOn, *smplIv)
	for _, fl := range flushes {
		if err := fl(); err != nil {
			fatal(err)
		}
	}
	if *metOut != "" {
		man, err := m.BuildManifest("cwspsim", name, *scale)
		if err != nil {
			fatal(err)
		}
		fh, err := os.Create(*metOut)
		if err != nil {
			fatal(err)
		}
		if err := man.Write(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}
	if *tsOut != "" {
		fh, err := os.Create(*tsOut)
		if err != nil {
			fatal(err)
		}
		if err := m.Telemetry().WriteSeriesCSV(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{
			"workload": name, "scheme": sch.Name, "stats": st,
			"derived": st.Derived(),
		}); err != nil {
			fatal(err)
		}
	} else {
		printStats(name, sch.Name, st)
	}

	if *compare {
		_, base := runOne(prog, cfg, sim.Baseline(), specs, nil, false, 0)
		if !*jsonOut {
			printStats(name, "base", base)
		}
		fmt.Printf("\nslowdown (%s / base): %.3f\n", sch.Name, st.Slowdown(base))
	}
}

func runOne(p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, tracer sim.Tracer, telemetry bool, sampleIv int64) (*sim.Machine, sim.Stats) {
	m, err := sim.NewThreaded(p, cfg, sch, specs)
	if err != nil {
		fatal(err)
	}
	if telemetry {
		m.EnableTelemetry(sim.TelemetryOptions{SampleInterval: sampleIv})
	}
	m.SetTracer(tracer)
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	return m, res.Stats
}

func printStats(app, scheme string, s sim.Stats) {
	fmt.Printf("== %s under %s ==\n", app, scheme)
	fmt.Printf("cycles            %12d\n", s.Cycles)
	fmt.Printf("instructions      %12d (IPC %.2f)\n", s.Instrs, s.IPC())
	fmt.Printf("loads/stores      %12d / %d\n", s.Loads, s.Stores)
	fmt.Printf("regions           %12d (%.1f instr/region)\n", s.Regions, s.IPR())
	fmt.Printf("checkpoint stores %12d\n", s.Ckpts)
	fmt.Printf("persist bytes     %12d (+%d undo-log bytes)\n", s.PersistBytes, s.LogBytes)
	fmt.Printf("NVM reads         %12d  WPQ hits/Minstr %.2f\n", s.NVMReads, s.WPQHPMI())
	fmt.Printf("stalls: PB %d  RBT %d  WB %d  drain %d  boundary %d  wpq-load %d\n",
		s.PBStallCyc, s.RBTStallCyc, s.WBStallCyc, s.DrainStallCyc, s.BoundaryStall, s.WPQLoadDelay)
	fmt.Printf("L1D miss %.3f  WB avg occupancy %.3f\n\n", s.L1DMissRate(), s.WBAvgOcc)
}

func scaleOf(s string) workloads.Scale {
	switch s {
	case "full":
		return workloads.Full
	case "smoke":
		return workloads.Smoke
	default:
		return workloads.Quick
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwspsim:", err)
	os.Exit(1)
}
