# cWSP reproduction — common targets.

GO ?= go

.PHONY: all build test test-short bench bench-smoke bench-check bench-baseline bench-kernel bench-kernel-check bench-kernel-baseline bench-kernel-gotest fuzz-smoke torture-smoke torture litmus-smoke litmus cwspd-smoke chaos-smoke service-load service-check service-baseline lint repro repro-quick examples trace metrics clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the full-scale shape experiments (minutes faster).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end exercise of the parallel experiment runner: one figure on a
# 4-wide pool with a persistent cache, run twice — the second invocation
# must be served entirely from the store. The cold run emits the bench
# trajectory record BENCH_smoke.json (gitignored; gate it with
# `make bench-check`, refresh the committed baseline with
# `make bench-baseline`).
bench-smoke:
	rm -rf .cwsp-cache-smoke
	$(GO) run ./cmd/cwspbench -exp fig06 -scale smoke -jobs 4 -cache-dir .cwsp-cache-smoke -bench-out BENCH_smoke.json
	$(GO) run ./cmd/cwspbench -exp fig06 -scale smoke -jobs 4 -cache-dir .cwsp-cache-smoke
	rm -rf .cwsp-cache-smoke

# Gate the freshest BENCH_smoke.json against the committed baseline:
# structural metrics (cell counts) always enforced; latency quantiles
# enforced when the host fingerprint matches the baseline's; wall-clock
# advisory. Exit 1 on regression beyond the 15% tolerance.
bench-check: BENCH_smoke.json
	$(GO) run ./cmd/cwspbench -bench-in BENCH_smoke.json -bench-check baselines/BENCH_smoke.json

BENCH_smoke.json:
	$(MAKE) bench-smoke

# Refresh the committed baseline from a fresh cold run on this machine.
bench-baseline:
	$(MAKE) bench-smoke
	cp BENCH_smoke.json baselines/BENCH_smoke.json

# Simulation-kernel comparison (quick-scale workloads × schemes × core
# counts, batched vs threaded backend measured back to back): emits the
# bench trajectory record BENCH_kernel.json (gitignored; gate it with
# `make bench-kernel-check`, refresh the committed baseline with
# `make bench-kernel-baseline`). See EXPERIMENTS.md "Kernel benchmarks"
# for the recorded numbers and the per-cell Amdahl breakdown.
bench-kernel:
	$(GO) run ./cmd/cwspbench -bench-kernel -bench-out BENCH_kernel.json

# Gate the freshest BENCH_kernel.json against the committed baseline:
# simulated cycle/instruction counts enforced exactly (a drift means the
# kernels are not running the same simulation), the dispatch-bound
# cell's >= 2x threaded speedup enforced on any host, absolute Minstr/s
# enforced only between matching host fingerprints.
bench-kernel-check: BENCH_kernel.json
	$(GO) run ./cmd/cwspbench -bench-in BENCH_kernel.json -bench-check baselines/BENCH_kernel.json

BENCH_kernel.json:
	$(MAKE) bench-kernel

# Refresh the committed kernel baseline from a fresh run on this machine.
bench-kernel-baseline:
	$(MAKE) bench-kernel
	cp BENCH_kernel.json baselines/BENCH_kernel.json

# The same cells as go-test benchmarks with allocation counts
# (per-kernel sub-benchmarks; slower, but -benchmem shows the threaded
# backend's zero steady-state allocations).
bench-kernel-gotest:
	$(GO) test ./internal/simtest -run xxx -bench RunUntil -benchmem -benchtime 10x

# Short differential-fuzz passes: the kernel-equivalence target (progen
# seed × scheme × crash point, every kernel must agree byte-for-byte),
# the threaded-backend 3-way differential (reference vs batched vs
# threaded on the same fuzzed cell), the litmus spec grammar round-trip
# (spec string → plan → spec), and the campaign-journal decoder
# (arbitrary bytes → longest verifiable prefix, re-decode stable, fold
# never panics).
fuzz-smoke:
	$(GO) test ./internal/simtest -run xxx -fuzz FuzzKernelEquivalence -fuzztime 20s
	$(GO) test ./internal/simtest -run xxx -fuzz FuzzThreadedEquivalence -fuzztime 10s
	$(GO) test ./internal/litmus -run xxx -fuzz FuzzLitmusSpec -fuzztime 10s
	$(GO) test ./internal/service -run xxx -fuzz FuzzJournalDecode -fuzztime 10s

# Small seeded fault-injection campaign with nested crash-during-recovery
# (depth 2). A failure prints the shrunk `cwsprecover -faults '<spec>'`
# reproducer command; paste it to replay the cell standalone.
torture-smoke:
	$(GO) run ./cmd/cwsptorture -seed 1 -n 4 -w tatp,rb,kmeans -depth 2 -points 3

# Acceptance-scale campaign: 500 cells (100 seeded plans x 5 workloads),
# nested crashes, zero silent divergences required.
torture:
	$(GO) run ./cmd/cwsptorture -seed 1 -n 100 -depth 2 -points 3 -out torture-report.json

# Small seeded persistency-model litmus campaign: generated litmus shapes
# crashed under the real persist path and judged against the allowed
# outcome set derived from each scheme's ordering axioms. A failure
# prints the shrunk `cwsplitmus -replay '<spec>'` reproducer.
litmus-smoke:
	$(GO) run ./cmd/cwsplitmus -seed 1 -n 5 -no-shrink -progress=false

# Acceptance-scale litmus campaign: 50 shapes x 11 schemes x 2 kernels =
# 1100 cells, every observed post-crash outcome inside the derived set.
litmus:
	$(GO) run ./cmd/cwsplitmus -seed 1 -n 50 -out litmus-report.json

# End-to-end exercise of the experiment daemon as a real subprocess:
# cwspload spawns a cwspd binary, submits a small sweep twice, asserts
# the repeat is byte-identical and served >=99% from the shared
# content-addressed cache, then SIGTERMs the daemon and requires a clean
# drain.
cwspd-smoke:
	$(GO) build -o bin/cwspd ./cmd/cwspd
	$(GO) build -o bin/cwspload ./cmd/cwspload
	./bin/cwspload -spawn-bin ./bin/cwspd -smoke

# Seeded crash-recovery campaign against a real journaled daemon: 20
# SIGKILLs at seeded points cycling the queue/run/flush phases, a restart
# after each, then the durability contract — zero accepted-but-lost
# campaigns, idempotent replay of journaled results on resubmit, and a
# final report byte-identical to an uninterrupted run.
chaos-smoke:
	$(GO) build -o bin/cwspd ./cmd/cwspd
	$(GO) build -o bin/cwspload ./cmd/cwspload
	./bin/cwspload -spawn-bin ./bin/cwspd -chaos -chaos-kills 20 -chaos-campaigns 6 -seed 1 -q

# Load-generate against an in-process daemon: 32 concurrent clients over
# mixed cold/warm campaign traffic, zero dropped campaigns required. The
# run emits the service bench trajectory record BENCH_service.json
# (gitignored; gate it with `make service-check`, refresh the committed
# baseline with `make service-baseline`).
service-load:
	$(GO) run ./cmd/cwspload -spawn -clients 32 -requests 2 -warm-seeds 2 -seed 1 -poll 5ms -q -bench-out BENCH_service.json

# Gate the freshest BENCH_service.json against the committed baseline:
# client count, dropped-campaign count, and warm cache-hit ratio enforced
# anywhere; request latency, throughput, and queue depth are wall-clock
# (queue-wait dominated) and advisory unless -bench-strict.
service-check: BENCH_service.json
	$(GO) run ./cmd/cwspload -bench-in BENCH_service.json -bench-check baselines/BENCH_service.json

BENCH_service.json:
	$(MAKE) service-load

# Refresh the committed service baseline from a fresh run on this machine.
service-baseline:
	$(MAKE) service-load
	cp BENCH_service.json baselines/BENCH_service.json

# Static soundness verification: vet, staticcheck (when installed; CI pins
# it), then the independent persistence checker over the checked-in
# example and a fixed block of generated programs (see DESIGN.md
# "Soundness checking" for the CWSP0xx codes).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi
	$(GO) build -o bin/cwsplint ./cmd/cwsplint
	./bin/cwsplint -seed 1 -count 25 examples/minic/btree.mc

# Regenerate the paper's full evaluation (tens of minutes, single core).
repro:
	$(GO) run ./cmd/cwspbench -all -scale full -per-app

repro-quick:
	$(GO) run ./cmd/cwspbench -all -scale quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crashconsistency
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/minic
	$(GO) run ./examples/sweep

# Export a Perfetto trace of the kvstore example's cWSP run
# (open kvstore-trace.json in ui.perfetto.dev).
trace:
	$(GO) run ./examples/kvstore -trace-perfetto kvstore-trace.json

# Export the kvstore run's telemetry manifest and sampled time series.
metrics:
	$(GO) run ./examples/kvstore -metrics-out kvstore-metrics.json -timeseries kvstore-series.csv

clean:
	$(GO) clean ./...
