// Package cwsp is the public facade of the cWSP reproduction: a
// compiler/architecture codesign for whole-system persistence on NVM main
// memory (Zeng, Zhang, Jung — ISCA 2024).
//
// The typical flow is:
//
//	prog := mybench.Build()                     // an ir.Program
//	out, report, _ := cwsp.Compile(prog)        // idempotent regions + pruned checkpoints
//	res, _ := cwsp.Run(out, cwsp.DefaultConfig(), cwsp.SchemeCWSP())
//	fmt.Println(res.Stats.Cycles)
//
// Crash consistency can be exercised directly:
//
//	ok, _ := cwsp.CheckCrashConsistency(out, cfg, crashCycle)
//
// Subsystems live in internal/ packages; this package re-exports the
// stable surface: the compiler driver, the machine model, the scheme
// catalogue, the 37-workload suite, and the per-figure experiment harness.
package cwsp

import (
	"io"

	"cwsp/internal/bench"
	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/recovery"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

// Re-exported core types.
type (
	// Program is the virtual-register IR program the toolchain operates on.
	Program = ir.Program
	// Config is the machine configuration (hierarchy, persist structures).
	Config = sim.Config
	// Scheme selects the crash-consistency discipline.
	Scheme = sim.Scheme
	// Result is a completed simulation.
	Result = sim.Result
	// Stats holds a run's counters.
	Stats = sim.Stats
	// CompileReport summarizes region formation and checkpoint pruning.
	CompileReport = compiler.Report
	// Workload is one of the 37 benchmark applications.
	Workload = workloads.Workload
	// ExperimentReport is one regenerated paper table/figure.
	ExperimentReport = bench.Report
)

// DefaultConfig returns the paper's default machine (scaled; see DESIGN.md).
func DefaultConfig() Config { return sim.DefaultConfig() }

// SchemeBaseline returns the no-crash-consistency baseline.
func SchemeBaseline() Scheme { return sim.Baseline() }

// SchemeCWSP returns the full cWSP design.
func SchemeCWSP() Scheme { return sim.CWSP() }

// SchemeByName resolves any scheme the benchmark harness knows
// ("cwsp", "capri", "ido", "replaycache", "psp-ideal", ...).
func SchemeByName(name string) (Scheme, bool) { return schemes.ByName(name) }

// Compile runs the cWSP compiler (region formation, checkpoint insertion,
// Penny-style pruning, recovery slices, live-across-call analysis) over a
// program, returning the transformed program and a report. The input is
// not modified.
func Compile(p *Program) (*Program, *CompileReport, error) {
	return compiler.Compile(p, compiler.DefaultOptions())
}

// Run executes a program to completion on the machine model.
func Run(p *Program, cfg Config, sch Scheme) (*Result, error) {
	m, err := sim.New(p, cfg, sch)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// CheckCrashConsistency cuts power at the given cycle of a cWSP run,
// executes the recovery protocol, re-runs to completion, and reports
// whether the final NVM image matches an uninterrupted run exactly.
// The program must be compiled (see Compile).
func CheckCrashConsistency(p *Program, cfg Config, crashCycle int64) (bool, error) {
	specs := []sim.ThreadSpec{{Fn: p.Entry}}
	g, err := recovery.Golden(p, cfg, sim.CWSP(), specs)
	if err != nil {
		return false, err
	}
	r, err := recovery.Check(p, cfg, sim.CWSP(), specs, crashCycle, g)
	if err != nil {
		return false, err
	}
	return r.Match, nil
}

// Workloads returns the 37-application suite in paper order.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName looks up one application.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Experiments lists the registered paper reproductions (fig01..fig27,
// hwcost, compiler).
func Experiments() []bench.Experiment { return bench.Experiments() }

// RunExperiment regenerates one paper table/figure. scale is "smoke",
// "quick" or "full"; log (may be nil) receives progress lines.
func RunExperiment(id, scale string, log io.Writer) (*ExperimentReport, error) {
	e, err := bench.ByID(id)
	if err != nil {
		return nil, err
	}
	s := workloads.Quick
	switch scale {
	case "full":
		s = workloads.Full
	case "smoke":
		s = workloads.Smoke
	}
	h := bench.NewHarness(bench.Options{Scale: s, Log: log})
	return e.Run(h)
}
