package cwsp

import (
	"testing"

	"cwsp/internal/progen"
)

func TestFacadeCompileAndRun(t *testing.T) {
	p := progen.Generate(1, progen.DefaultConfig())
	out, rep, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRegions() == 0 {
		t.Error("no regions formed")
	}
	res, err := Run(out, DefaultConfig(), SchemeCWSP())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instrs == 0 || res.Stats.Cycles == 0 {
		t.Error("empty run")
	}
	base, err := Run(p, DefaultConfig(), SchemeBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if base.Ret[0] != res.Ret[0] {
		t.Errorf("schemes disagree on result: %d vs %d", base.Ret[0], res.Ret[0])
	}
}

func TestFacadeCrashConsistency(t *testing.T) {
	p := progen.Generate(2, progen.DefaultConfig())
	out, _, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, crash := range []int64{1, 500, 5000} {
		ok, err := CheckCrashConsistency(out, DefaultConfig(), crash)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("crash at %d not recovered", crash)
		}
	}
}

func TestFacadeSchemesAndWorkloads(t *testing.T) {
	if len(Workloads()) != 37 {
		t.Errorf("expected 37 workloads, got %d", len(Workloads()))
	}
	if _, ok := SchemeByName("capri"); !ok {
		t.Error("capri scheme missing")
	}
	if _, ok := SchemeByName("bogus"); ok {
		t.Error("bogus scheme resolved")
	}
	if _, err := WorkloadByName("lbm"); err != nil {
		t.Error(err)
	}
	if len(Experiments()) < 19 {
		t.Errorf("expected at least 19 experiments, got %d", len(Experiments()))
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	rep, err := RunExperiment("hwcost", "smoke", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Error("empty experiment report")
	}
	if _, err := RunExperiment("nope", "smoke", nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}
