package cwsp

// One testing.B benchmark per paper table/figure: each regenerates the
// experiment through the harness and reports its headline metric(s) as
// custom benchmark outputs. `go test -bench=. -benchmem` therefore walks
// the paper's whole evaluation section. Benchmarks run at smoke scale so
// the suite completes in minutes; `cmd/cwspbench -scale full` regenerates
// publication-scale numbers (EXPERIMENTS.md records those).

import (
	"fmt"
	"sort"
	"testing"

	"cwsp/internal/bench"
	"cwsp/internal/progen"
	"cwsp/internal/recovery"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

// benchH is shared across benchmarks so baseline runs are reused.
var benchH = bench.NewHarness(bench.Options{Scale: workloads.Smoke})

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		rep, err = e.Run(benchH)
		if err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]string, 0, len(rep.Summary))
	for k := range rep.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.ReportMetric(rep.Summary[k], k)
	}
}

func BenchmarkFig01CacheLevels(b *testing.B)      { runExperiment(b, "fig01") }
func BenchmarkFig06WBOccupancy(b *testing.B)      { runExperiment(b, "fig06") }
func BenchmarkFig08WPQHits(b *testing.B)          { runExperiment(b, "fig08") }
func BenchmarkFig13Overhead(b *testing.B)         { runExperiment(b, "fig13") }
func BenchmarkFig14PriorWork(b *testing.B)        { runExperiment(b, "fig14") }
func BenchmarkFig15Breakdown(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkFig17CXLDevices(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkFig18VsPSP(b *testing.B)            { runExperiment(b, "fig18") }
func BenchmarkFig19RegionSize(b *testing.B)       { runExperiment(b, "fig19") }
func BenchmarkFig20DeeperHierarchy(b *testing.B)  { runExperiment(b, "fig20") }
func BenchmarkFig21PersistBandwidth(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22RBTSize(b *testing.B)          { runExperiment(b, "fig22") }
func BenchmarkFig23PersistLatency(b *testing.B)   { runExperiment(b, "fig23") }
func BenchmarkFig24WBSize(b *testing.B)           { runExperiment(b, "fig24") }
func BenchmarkFig25PBSize(b *testing.B)           { runExperiment(b, "fig25") }
func BenchmarkFig26WPQSize(b *testing.B)          { runExperiment(b, "fig26") }
func BenchmarkFig27NVMTech(b *testing.B)          { runExperiment(b, "fig27") }
func BenchmarkTabHWCost(b *testing.B)             { runExperiment(b, "hwcost") }
func BenchmarkTabCompilerStats(b *testing.B)      { runExperiment(b, "compiler") }
func BenchmarkAblCheckpointLadder(b *testing.B)   { runExperiment(b, "abl-ckpt") }
func BenchmarkAblGranularity(b *testing.B)        { runExperiment(b, "abl-gran") }
func BenchmarkAblUndoLogging(b *testing.B)        { runExperiment(b, "abl-log") }
func BenchmarkMTScaling(b *testing.B)             { runExperiment(b, "mt") }

// BenchmarkCompiler measures raw compiler throughput (regions + pruning +
// slices) over the full workload suite.
func BenchmarkCompiler(b *testing.B) {
	progs := make([]*Program, 0, 37)
	for _, w := range Workloads() {
		progs = append(progs, w.Build(workloads.Smoke))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, _, err := Compile(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorMIPS measures machine-model throughput in simulated
// instructions per second.
func BenchmarkSimulatorMIPS(b *testing.B) {
	w, err := WorkloadByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(workloads.Quick)
	q, _, err := Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(q, DefaultConfig(), SchemeCWSP())
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Msim-instr/s")
}

// BenchmarkCrashRecovery measures the full crash+recover+verify cycle.
func BenchmarkCrashRecovery(b *testing.B) {
	p := progen.Generate(5, progen.DefaultConfig())
	q, _, err := Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	specs := []sim.ThreadSpec{{Fn: q.Entry}}
	g, err := recovery.Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crash := 1 + int64(i)%g.Stats.Cycles
		r, err := recovery.Check(q, cfg, sim.CWSP(), specs, crash, g)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Match {
			b.Fatalf("crash at %d not recovered", crash)
		}
	}
}

// Example of the facade in documentation form.
func Example() {
	p := progen.Generate(1, progen.DefaultConfig())
	compiled, rep, _ := Compile(p)
	fmt.Println(rep.TotalRegions() > 0)
	res, _ := Run(compiled, DefaultConfig(), SchemeCWSP())
	fmt.Println(res.Stats.Instrs > 0)
	// Output:
	// true
	// true
}
