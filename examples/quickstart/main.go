// Quickstart: build a tiny program against the public API, compile it with
// the cWSP compiler, run it on the machine model under the baseline and
// under cWSP, and verify crash consistency at a few power-failure points.
package main

import (
	"fmt"
	"log"

	"cwsp"
	"cwsp/internal/ir"
)

// buildProgram constructs: sum of squares written into an array, read back
// as a checksum — a minimal loop with stores (so there is something to
// persist) and an emit (observable output).
func buildProgram() *cwsp.Program {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	arr := fb.Alloc(8 * 64)

	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(64))
	fb.Br(ir.R(c), body, exit)

	fb.SetBlock(body)
	sq := fb.Mul(ir.R(i), ir.R(i))
	off := fb.Mul(ir.R(i), ir.Imm(8))
	addr := fb.Add(ir.R(arr), ir.R(off))
	fb.Store(ir.R(sq), ir.R(addr), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	sum := fb.Reg()
	fb.ConstInto(sum, 0)
	h2 := fb.AddBlock("h2")
	b2 := fb.AddBlock("b2")
	done := fb.AddBlock("done")
	fb.ConstInto(i, 0)
	fb.Jmp(h2)
	fb.SetBlock(h2)
	c2 := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(64))
	fb.Br(ir.R(c2), b2, done)
	fb.SetBlock(b2)
	off2 := fb.Mul(ir.R(i), ir.Imm(8))
	a2 := fb.Add(ir.R(arr), ir.R(off2))
	v := fb.Load(ir.R(a2), 0)
	fb.BinInto(ir.OpAdd, sum, ir.R(sum), ir.R(v))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(h2)
	fb.SetBlock(done)
	fb.Emit(ir.R(sum))
	fb.Ret(ir.R(sum))

	p := ir.NewProgram("quickstart")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

func main() {
	prog := buildProgram()

	compiled, report, err := cwsp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiler: %d idempotent regions, %d checkpoints kept (%d pruned)\n",
		report.TotalRegions(), report.TotalCheckpoints(), report.PrunedCheckpoints())

	cfg := cwsp.DefaultConfig()
	base, err := cwsp.Run(prog, cfg, cwsp.SchemeBaseline())
	if err != nil {
		log.Fatal(err)
	}
	wsp, err := cwsp.Run(compiled, cfg, cwsp.SchemeCWSP())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("result: sum of squares below 64 = %d (both schemes agree: %v)\n",
		wsp.Ret[0], base.Ret[0] == wsp.Ret[0])
	fmt.Printf("baseline: %6d cycles\n", base.Stats.Cycles)
	fmt.Printf("cWSP:     %6d cycles (slowdown %.3f, %d persist bytes)\n",
		wsp.Stats.Cycles, wsp.Stats.Slowdown(base.Stats), wsp.Stats.PersistBytes)

	for _, crash := range []int64{1, wsp.Stats.Cycles / 3, wsp.Stats.Cycles * 2 / 3} {
		ok, err := cwsp.CheckCrashConsistency(compiled, cfg, crash)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("power failure at cycle %6d: recovered exactly = %v\n", crash, ok)
	}
}
