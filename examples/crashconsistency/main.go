// Crash consistency on the paper's own motivating example (Section I):
// inserting nodes at the head of a doubly-linked list. A store to the new
// node and the store fixing the old head's prev pointer can persist out of
// order across two NUMA memory controllers; a power failure in between
// leaves a dangling pointer in NVM.
//
// This example runs the insert loop under (a) naive whole-system
// persistence — stores stream to NVM with no regions, logging, or recovery
// — and (b) cWSP, crashes both at the same cycles, and walks the NVM image
// of each: the naive run corrupts the list; cWSP's recovered image is
// always exactly the uninterrupted one.
package main

import (
	"fmt"
	"log"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/mem"
	"cwsp/internal/recovery"
	"cwsp/internal/sim"
)

const (
	nodes = 48
	// One node per 4 KiB page: consecutive nodes live on alternating
	// NUMA memory controllers (addresses interleave at page granularity),
	// which is exactly the store-reordering hazard of the paper's
	// Figure 2(c).
	nodeSize = 4096 // [0]=value [8]=next [16]=prev
	headSlot = int64(0x2000_0000)
)

// buildList: insert `nodes` nodes at the list head, then walk the list
// emitting a checksum.
func buildList() *ir.Program {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")

	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Store(ir.Imm(0), ir.Imm(headSlot), 0)
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(nodes))
	fb.Br(ir.R(c), body, exit)

	fb.SetBlock(body)
	n := fb.Alloc(nodeSize)
	old := fb.Load(ir.Imm(headSlot), 0)
	v0 := fb.Mul(ir.R(i), ir.Imm(7))
	v := fb.Add(ir.R(v0), ir.Imm(1)) // values are never zero
	fb.Store(ir.R(v), ir.R(n), 0)    // n.value
	fb.Store(ir.R(old), ir.R(n), 8)  // (1) n.next = old head
	fb.Store(ir.Imm(0), ir.R(n), 16)
	fix := fb.AddBlock("fix")
	skip := fb.AddBlock("skip")
	nz := fb.Bin(ir.OpCmpNE, ir.R(old), ir.Imm(0))
	fb.Br(ir.R(nz), fix, skip)
	fb.SetBlock(fix)
	fb.Store(ir.R(n), ir.R(old), 16) // (2) old.prev = n
	fb.Jmp(skip)
	fb.SetBlock(skip)
	fb.Store(ir.R(n), ir.Imm(headSlot), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	sum := fb.Reg()
	cur := fb.Reg()
	fb.ConstInto(sum, 0)
	fb.LoadInto(cur, ir.Imm(headSlot), 0)
	wh := fb.AddBlock("wh")
	wb := fb.AddBlock("wb")
	done := fb.AddBlock("done")
	fb.Jmp(wh)
	fb.SetBlock(wh)
	nz2 := fb.Bin(ir.OpCmpNE, ir.R(cur), ir.Imm(0))
	fb.Br(ir.R(nz2), wb, done)
	fb.SetBlock(wb)
	val := fb.Load(ir.R(cur), 0)
	x := fb.Mul(ir.R(sum), ir.Imm(3))
	fb.BinInto(ir.OpAdd, sum, ir.R(x), ir.R(val))
	fb.LoadInto(cur, ir.R(cur), 8)
	fb.Jmp(wh)
	fb.SetBlock(done)
	fb.Emit(ir.R(sum))
	fb.Ret(ir.R(sum))

	p := ir.NewProgram("dll")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

// auditList walks the list image in NVM and reports whether every
// reachable node is intact (a node whose prev/next point at never-written
// memory indicates a torn insert).
func auditList(nvm *mem.PagedMem) (n int, torn bool) {
	// A node is written once its value word is non-zero (values are 7i+1).
	written := func(addr int64) bool { return nvm.Load(addr) != 0 }
	cur := nvm.Load(headSlot)
	for cur != 0 && n <= nodes+1 {
		if !written(cur) {
			return n, true // reachable node whose contents never persisted
		}
		next := nvm.Load(cur + 8)
		if next != 0 {
			// Doubly-linked invariant: next.prev must point back at cur.
			if back := nvm.Load(next + 16); back != cur {
				return n, true
			}
		}
		// The dangling-pointer hazard of the paper: this node's prev was
		// fixed up (old.prev = new), but the new node itself never made it
		// to NVM.
		if prev := nvm.Load(cur + 16); prev != 0 {
			if !written(prev) || nvm.Load(prev+8) != cur {
				return n, true
			}
		}
		cur = next
		n++
	}
	return n, false
}

// naiveWSP streams stores to NVM with no regions, speculation handling, or
// logging — "just persist everything" (the strawman of Section II-B).
func naiveWSP() sim.Scheme {
	return sim.Scheme{
		Name: "naive-wsp", Persist: true, GranularityBytes: 8,
		DRAMCache: true, UseRBT: true,
	}
}

func main() {
	prog := buildList()
	compiled, _, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Recoverable = true
	specs := []sim.ThreadSpec{{Fn: "main"}}

	golden, err := recovery.Golden(compiled, cfg, sim.CWSP(), specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d nodes inserted, checksum %d, %d cycles\n\n",
		nodes, golden.Ret[0], golden.Stats.Cycles)

	naiveCorrupt, cwspCorrupt, points := 0, 0, 0
	for crash := int64(200); crash < golden.Stats.Cycles; crash += 97 {
		points++

		// (a) Naive WSP: the raw NVM image at the crash instant.
		nm, err := sim.New(compiled, cfg, naiveWSP())
		if err != nil {
			log.Fatal(err)
		}
		ncs, err := nm.CrashAt(crash)
		if err != nil {
			log.Fatal(err)
		}
		if _, torn := auditList(ncs.NVM); torn {
			naiveCorrupt++
		}

		// (b) cWSP: crash, run the recovery protocol, re-execute.
		res, err := recovery.Check(compiled, cfg, sim.CWSP(), specs, crash, golden)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Match {
			cwspCorrupt++
		}
	}

	fmt.Printf("%-28s %4d of %d crash points leave a torn list\n", "naive persist-everything:", naiveCorrupt, points)
	fmt.Printf("%-28s %4d of %d crash points deviate from golden\n", "cWSP + recovery protocol:", cwspCorrupt, points)
	if cwspCorrupt == 0 && naiveCorrupt > 0 {
		fmt.Println("\ncWSP recovered the doubly-linked list exactly at every crash point.")
	}
}
