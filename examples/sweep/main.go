// A custom sensitivity sweep through the public API: how the persist-path
// bandwidth and the RBT speculation depth trade off for a store-heavy
// workload (SPLASH3 lu-ncg), for cWSP and for Capri's 64-byte-granularity
// design. Demonstrates composing configs/schemes beyond the paper's own
// figures.
package main

import (
	"fmt"
	"log"

	"cwsp"
	"cwsp/internal/schemes"
	"cwsp/internal/stats"
	"cwsp/internal/workloads"
)

func main() {
	w, err := cwsp.WorkloadByName("lu-ncg")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(workloads.Quick)
	compiled, _, err := cwsp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}

	base, err := cwsp.Run(prog, cwsp.DefaultConfig(), cwsp.SchemeBaseline())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("lu-ncg slowdown vs baseline")
	t := stats.NewTable("persist-path", "cwsp/RBT-8", "cwsp/RBT-16", "cwsp/RBT-32", "capri")
	for _, gbs := range []float64{1, 2, 4, 8, 16, 32} {
		row := []interface{}{fmt.Sprintf("%2.0f GB/s", gbs)}
		for _, rbt := range []int{8, 16, 32} {
			cfg := cwsp.DefaultConfig().PersistPathGBs(gbs)
			cfg.RBTSize = rbt
			res, err := cwsp.Run(compiled, cfg, cwsp.SchemeCWSP())
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.Stats.Slowdown(base.Stats))
		}
		capri, _ := cwsp.SchemeByName("capri")
		cfg := schemes.ConfigFor(capri, cwsp.DefaultConfig().PersistPathGBs(gbs))
		res, err := cwsp.Run(compiled, cfg, capri)
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, res.Stats.Slowdown(base.Stats))
		t.AddF(row...)
	}
	fmt.Print(t.String())
	fmt.Println("\ncWSP's 8-byte persist granularity needs an eighth of Capri's bandwidth;")
	fmt.Println("the RBT depth only matters once the path itself stops being the bottleneck.")
}
