// A persistent key-value store on whole-system persistence: an
// open-addressing hash table written in the IR, exercised with an
// insert/update/lookup mix, run under the baseline, cWSP, and the prior
// schemes, and crash-tested. Under WSP no persistence-aware programming is
// needed — the table is ordinary code; cWSP makes it crash consistent.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cwsp"
	"cwsp/internal/ir"
	"cwsp/internal/recovery"
	"cwsp/internal/sim"
)

const (
	tableBase  = int64(0x3000_0000)
	tableSlots = 4096 // power of two; slot = [0]=key [8]=value (16 bytes)
	ops        = 3000
)

// buildKV: for each op, derive (key, value) from an LCG; probe linearly
// from hash(key) until the key or an empty slot is found; insert or update;
// every 16th op does a lookup-sum instead. Emits table checksum.
func buildKV() *cwsp.Program {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	k := struct{ fb *ir.FuncBuilder }{fb}
	_ = k

	rng := fb.Reg()
	acc := fb.Reg()
	fb.ConstInto(rng, 0x9E3779B97F4A7C15>>1)
	fb.ConstInto(acc, 0)

	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(ops))
	fb.Br(ir.R(c), body, exit)

	fb.SetBlock(body)
	// key = (lcg >> 18) | 1 (never zero); value = lcg >> 7
	m := fb.Mul(ir.R(rng), ir.Imm(6364136223846793005))
	fb.BinInto(ir.OpAdd, rng, ir.R(m), ir.Imm(1442695040888963407))
	k1 := fb.Bin(ir.OpShr, ir.R(rng), ir.Imm(18))
	k2 := fb.Bin(ir.OpAnd, ir.R(k1), ir.Imm(1<<20-1))
	key := fb.Bin(ir.OpOr, ir.R(k2), ir.Imm(1))
	val := fb.Bin(ir.OpShr, ir.R(rng), ir.Imm(7))

	// probe: idx = key*phi mod slots; while slot.key not in {0, key}: idx++
	h1 := fb.Mul(ir.R(key), ir.Imm(2654435761))
	idx := fb.Reg()
	fb.BinInto(ir.OpAnd, idx, ir.R(h1), ir.Imm(tableSlots-1))

	probe := fb.AddBlock("probe")
	insert := fb.AddBlock("insert")
	next := fb.AddBlock("next")
	fb.Jmp(probe)

	fb.SetBlock(probe)
	off := fb.Bin(ir.OpShl, ir.R(idx), ir.Imm(4)) // *16 bytes
	slot := fb.Add(ir.Imm(tableBase), ir.R(off))
	sk := fb.Load(ir.R(slot), 0)
	empty := fb.Bin(ir.OpCmpEQ, ir.R(sk), ir.Imm(0))
	same := fb.Bin(ir.OpCmpEQ, ir.R(sk), ir.R(key))
	hit := fb.Bin(ir.OpOr, ir.R(empty), ir.R(same))
	fb.Br(ir.R(hit), insert, next)

	fb.SetBlock(next)
	n1 := fb.Add(ir.R(idx), ir.Imm(1))
	fb.BinInto(ir.OpAnd, idx, ir.R(n1), ir.Imm(tableSlots-1))
	fb.Jmp(probe)

	fb.SetBlock(insert)
	// Write key then value (two stores the table must never tear).
	off2 := fb.Bin(ir.OpShl, ir.R(idx), ir.Imm(4))
	slot2 := fb.Add(ir.Imm(tableBase), ir.R(off2))
	fb.Store(ir.R(key), ir.R(slot2), 0)
	fb.Store(ir.R(val), ir.R(slot2), 8)
	ov := fb.Load(ir.R(slot2), 8)
	fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(ov))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	// Table checksum.
	j := fb.Reg()
	sum := fb.Reg()
	fb.ConstInto(j, 0)
	fb.ConstInto(sum, 0)
	ch := fb.AddBlock("ch")
	cb := fb.AddBlock("cb")
	done := fb.AddBlock("done")
	fb.Jmp(ch)
	fb.SetBlock(ch)
	cc := fb.Bin(ir.OpCmpLT, ir.R(j), ir.Imm(tableSlots))
	fb.Br(ir.R(cc), cb, done)
	fb.SetBlock(cb)
	o := fb.Bin(ir.OpShl, ir.R(j), ir.Imm(4))
	s := fb.Add(ir.Imm(tableBase), ir.R(o))
	kk := fb.Load(ir.R(s), 0)
	vv := fb.Load(ir.R(s), 8)
	x := fb.Mul(ir.R(sum), ir.Imm(31))
	y := fb.Add(ir.R(x), ir.R(kk))
	fb.BinInto(ir.OpXor, sum, ir.R(y), ir.R(vv))
	fb.BinInto(ir.OpAdd, j, ir.R(j), ir.Imm(1))
	fb.Jmp(ch)
	fb.SetBlock(done)
	fb.Emit(ir.R(sum))
	fb.Ret(ir.R(sum))

	p := ir.NewProgram("kvstore")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

func main() {
	var (
		perfTo = flag.String("trace-perfetto", "", "write a Perfetto trace of the cWSP run to this file")
		metOut = flag.String("metrics-out", "", "write the cWSP run's telemetry manifest to this JSON file")
		tsOut  = flag.String("timeseries", "", "write the cWSP run's sampled time series as CSV to this file")
	)
	flag.Parse()

	prog := buildKV()
	compiled, rep, err := cwsp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvstore: %d ops over %d slots; %d regions, %d checkpoints (%d pruned)\n\n",
		ops, tableSlots, rep.TotalRegions(), rep.TotalCheckpoints(), rep.PrunedCheckpoints())

	cfg := cwsp.DefaultConfig()
	base, err := cwsp.Run(prog, cfg, cwsp.SchemeBaseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %10d cycles  (checksum %d)\n", "baseline", base.Stats.Cycles, base.Ret[0])

	for _, name := range []string{"cwsp", "capri", "ido", "replaycache"} {
		sch, _ := cwsp.SchemeByName(name)
		run := compiled
		res, err := cwsp.Run(run, cfg, sch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d cycles  (slowdown %.3f)\n", name, res.Stats.Cycles, res.Stats.Slowdown(base.Stats))
	}

	// One more cWSP run with the observability hooks attached, when asked.
	if *perfTo != "" || *metOut != "" || *tsOut != "" {
		if err := observedRun(compiled, cfg, *perfTo, *metOut, *tsOut); err != nil {
			log.Fatal(err)
		}
	}

	// Crash-test the store under cWSP.
	specs := []sim.ThreadSpec{{Fn: "main"}}
	fail, checked, err := recovery.Sweep(compiled, cfg, sim.CWSP(), specs, 20)
	if err != nil {
		log.Fatal(err)
	}
	if fail != nil {
		fmt.Printf("\ncrash at cycle %d NOT recovered (diffs %v)\n", fail.CrashCycle, fail.DiffAddrs)
		return
	}
	fmt.Printf("\ncrash-tested: %d power-failure points, all recovered to the exact table state\n", checked)
}

// observedRun repeats the cWSP run with telemetry and/or Perfetto tracing
// enabled and writes the requested artifacts.
func observedRun(compiled *cwsp.Program, cfg cwsp.Config, perfTo, metOut, tsOut string) error {
	m, err := sim.New(compiled, cfg, sim.CWSP())
	if err != nil {
		return err
	}
	if metOut != "" || tsOut != "" {
		m.EnableTelemetry(sim.TelemetryOptions{SampleInterval: 1024})
	}
	var pt *sim.PerfettoTracer
	var pfh *os.File
	if perfTo != "" {
		if pfh, err = os.Create(perfTo); err != nil {
			return err
		}
		pt = sim.NewPerfettoTracer(pfh)
		m.SetTracer(pt)
	}
	if _, err := m.Run(); err != nil {
		return err
	}
	if pt != nil {
		if err := pt.Close(); err != nil {
			return err
		}
		if err := pfh.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Perfetto trace to %s (open in ui.perfetto.dev)\n", perfTo)
	}
	if metOut != "" {
		man, err := m.BuildManifest("kvstore", "kvstore", "")
		if err != nil {
			return err
		}
		fh, err := os.Create(metOut)
		if err != nil {
			return err
		}
		if err := man.Write(fh); err != nil {
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote telemetry manifest to %s\n", metOut)
	}
	if tsOut != "" {
		fh, err := os.Create(tsOut)
		if err != nil {
			return err
		}
		if err := m.Telemetry().WriteSeriesCSV(fh); err != nil {
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote time series to %s\n", tsOut)
	}
	return nil
}
