// Compile a minic source file (a binary search tree with zero
// persistence-aware code), run it through the cWSP toolchain, and
// crash-test it: the paper's promise — unmodified programs become crash
// consistent — demonstrated from C-like source text.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"cwsp"
	"cwsp/internal/minic"
)

//go:embed btree.mc
var src string

func main() {
	prog, err := minic.CompileNamed(src, "btree.mc")
	if err != nil {
		log.Fatal(err)
	}
	compiled, rep, err := cwsp.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("btree.mc -> %d IR functions, %d idempotent regions, %d checkpoints (%d pruned)\n",
		len(prog.Funcs), rep.TotalRegions(), rep.TotalCheckpoints(), rep.PrunedCheckpoints())

	cfg := cwsp.DefaultConfig()
	base, err := cwsp.Run(prog, cfg, cwsp.SchemeBaseline())
	if err != nil {
		log.Fatal(err)
	}
	res, err := cwsp.Run(compiled, cfg, cwsp.SchemeCWSP())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: inserted/hits/sum = %v; cWSP slowdown %.3f\n",
		res.Output, res.Stats.Slowdown(base.Stats))

	bad := 0
	for frac := int64(1); frac <= 8; frac++ {
		crash := res.Stats.Cycles * frac / 9
		ok, err := cwsp.CheckCrashConsistency(compiled, cfg, crash)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			bad++
		}
	}
	fmt.Printf("crash points tested: 8, not recovered: %d\n", bad)
}
